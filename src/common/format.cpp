#include "common/format.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
  if (c >= 'A' && c <= 'F') return 10 + (c - 'A');
  return -1;
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Result<std::basic_string<std::uint8_t>> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgument("hex string has odd length");
  }
  std::basic_string<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "kB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1000.0 && unit < 4) {
    v /= 1000.0;
    ++unit;
  }
  if (unit == 0) {
    return std::to_string(bytes) + " B";
  }
  return format_fixed(v, 2) + " " + kUnits[unit];
}

Result<std::uint64_t> parse_bytes(std::string_view text) {
  // split numeric prefix
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  if (i == 0) return InvalidArgument("no numeric prefix in byte size");
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + i, value);
  if (ec != std::errc() || ptr != text.data() + i) {
    return InvalidArgument("bad numeric prefix in byte size");
  }
  // trim whitespace then read unit
  std::string_view unit = text.substr(i);
  while (!unit.empty() && unit.front() == ' ') unit.remove_prefix(1);
  std::string u;
  for (char c : unit) u.push_back(static_cast<char>(std::tolower(c)));

  double mult = 1.0;
  if (u.empty() || u == "b") {
    mult = 1.0;
  } else if (u == "kb" || u == "k") {
    mult = 1e3;
  } else if (u == "mb" || u == "m") {
    mult = 1e6;
  } else if (u == "gb" || u == "g") {
    mult = 1e9;
  } else if (u == "tb" || u == "t") {
    mult = 1e12;
  } else if (u == "kib") {
    mult = 1024.0;
  } else if (u == "mib") {
    mult = 1024.0 * 1024.0;
  } else if (u == "gib") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else {
    return InvalidArgument("unknown byte-size unit: " + u);
  }
  double total = value * mult;
  if (total < 0 || total > 9.2e18) return OutOfRange("byte size overflows");
  return static_cast<std::uint64_t>(total);
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_seconds(double seconds) {
  if (!(seconds == seconds)) return "nan";
  double abs = std::fabs(seconds);
  if (abs >= 1.0) return format_fixed(seconds, 2) + "s";
  if (abs >= 1e-3) return format_fixed(seconds * 1e3, 2) + "ms";
  if (abs >= 1e-6) return format_fixed(seconds * 1e6, 2) + "us";
  return format_fixed(seconds * 1e9, 1) + "ns";
}

}  // namespace hs
