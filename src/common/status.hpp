// Lightweight status / result types used across HetStream.
//
// The library deliberately avoids exceptions on hot paths (stream stages and
// simulated-device operations run millions of times); fallible operations
// return Status or Result<T>. Construction-time programming errors still use
// assertions.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hs {

/// Error categories; intentionally coarse — each carries a free-form message.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,       ///< device or host allocation failure
  kNotFound,
  kFailedPrecondition, ///< e.g. async copy from pageable memory
  kOutOfRange,
  kAlreadyExists,
  kInternal,
  kUnimplemented,
  kAborted,
  kDataLoss,           ///< corrupt container / failed checksum
  kUnavailable,        ///< device lost / not available (sticky)
};

/// Human-readable name of an ErrorCode (stable, for logs and tests).
std::string_view error_code_name(ErrorCode code);

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status() or OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status OutOfMemory(std::string msg) {
  return {ErrorCode::kOutOfMemory, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status Aborted(std::string msg) {
  return {ErrorCode::kAborted, std::move(msg)};
}
inline Status DataLoss(std::string msg) {
  return {ErrorCode::kDataLoss, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}

/// A value-or-error. Minimal expected<> stand-in: value() asserts on error,
/// so callers must check ok() first (tests enforce the error paths).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result from Status requires an error");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// value() if ok, otherwise the provided default.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hs

// --- error-propagation macros -------------------------------------------
//
// HS_RETURN_IF_ERROR(expr): evaluate a Status-returning expression once and
// return it from the enclosing function if it is not OK.
//
// HS_ASSIGN_OR_RETURN(lhs, expr): evaluate a Result<T>-returning expression;
// on error return its Status, otherwise move the value into `lhs` (which may
// be a new declaration, e.g. `HS_ASSIGN_OR_RETURN(auto v, Compute())`).

#define HS_STATUS_CONCAT_IMPL_(a, b) a##b
#define HS_STATUS_CONCAT_(a, b) HS_STATUS_CONCAT_IMPL_(a, b)

#define HS_RETURN_IF_ERROR(expr)                                      \
  do {                                                                \
    if (::hs::Status hs_status_tmp_ = (expr); !hs_status_tmp_.ok()) { \
      return hs_status_tmp_;                                          \
    }                                                                 \
  } while (false)

#define HS_ASSIGN_OR_RETURN(lhs, expr) \
  HS_ASSIGN_OR_RETURN_IMPL_(HS_STATUS_CONCAT_(hs_result_tmp_, __LINE__), lhs, expr)

#define HS_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) {                                \
    return result.status();                          \
  }                                                  \
  lhs = std::move(result).value()
