// Bounded retry with exponential backoff, used by the GPU-facing stream
// stages to absorb transient device failures (failed copies, spurious launch
// errors, transient allocation pressure) before degrading to the CPU path.
//
// Policy and telemetry are deliberately tiny: stages run per stream item, so
// the fast path (first attempt succeeds) must cost one branch and one relaxed
// atomic increment. Delays reuse the escalating Backoff from backoff.hpp for
// sub-sleep waits and fall back to sleep_for once the exponential delay
// exceeds the spin range.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/backoff.hpp"
#include "common/status.hpp"

namespace hs {

/// When an operation may be re-attempted. Transient device errors (kInternal)
/// and allocation pressure (kOutOfMemory) are retriable; a lost device
/// (kUnavailable) never recovers by retrying on the same device, and genuine
/// programming errors (kInvalidArgument, ...) must surface immediately.
[[nodiscard]] inline bool default_retriable(ErrorCode code) {
  return code == ErrorCode::kInternal || code == ErrorCode::kOutOfMemory;
}

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 4;
  /// Delay before the first retry; doubles (times `multiplier`) per retry.
  std::chrono::microseconds base_delay{50};
  double multiplier = 2.0;
  std::chrono::microseconds max_delay{5000};
  bool (*retriable)(ErrorCode) = &default_retriable;
};

/// One recorded give-up or retry, for post-run inspection in tests/benches.
struct RetryEvent {
  std::string op;       ///< operation label, e.g. "mandel.h2d"
  int attempt = 0;      ///< 1-based attempt number that failed
  ErrorCode code = ErrorCode::kOk;
  bool gave_up = false; ///< true if this failure exhausted the policy
};

/// Thread-safe telemetry shared by all replicas of a fault-tolerant stage.
/// Counters are relaxed atomics; the event log is bounded and mutex-guarded
/// (it is only written on failures, which are off the fast path by
/// definition).
class RetryStats {
 public:
  std::atomic<std::uint64_t> attempts{0};        ///< operation attempts
  std::atomic<std::uint64_t> retries{0};         ///< re-attempts after failure
  std::atomic<std::uint64_t> exhausted{0};       ///< gave up after max_attempts
  std::atomic<std::uint64_t> cpu_fallbacks{0};   ///< items computed on the CPU path
  std::atomic<std::uint64_t> device_losses{0};   ///< sticky device losses observed
  std::atomic<std::uint64_t> device_switches{0}; ///< migrations to a surviving device

  void record_failure(std::string op, int attempt, ErrorCode code,
                      bool gave_up) {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < kMaxEvents) {
      events_.push_back(RetryEvent{std::move(op), attempt, code, gave_up});
    }
  }

  [[nodiscard]] std::vector<RetryEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  [[nodiscard]] std::uint64_t recoveries() const {
    return retries.load() + cpu_fallbacks.load() + device_switches.load();
  }

  [[nodiscard]] std::string ToString() const;

 private:
  static constexpr std::size_t kMaxEvents = 1024;
  mutable std::mutex mu_;
  std::vector<RetryEvent> events_;
};

inline std::string RetryStats::ToString() const {
  std::string out = "attempts=" + std::to_string(attempts.load()) +
                    " retries=" + std::to_string(retries.load()) +
                    " exhausted=" + std::to_string(exhausted.load()) +
                    " cpu_fallbacks=" + std::to_string(cpu_fallbacks.load()) +
                    " device_losses=" + std::to_string(device_losses.load()) +
                    " device_switches=" + std::to_string(device_switches.load());
  return out;
}

namespace detail {

inline void retry_delay(const RetryPolicy& policy, int retry_index) {
  // Scale and clamp in the double domain: multiplier^retry_index can exceed
  // the int64 range, and casting an out-of-range double is UB.
  const double cap = static_cast<double>(policy.max_delay.count());
  double us = static_cast<double>(policy.base_delay.count());
  for (int i = 0; i < retry_index && us < cap; ++i) us *= policy.multiplier;
  if (us > cap) us = cap;
  auto delay = std::chrono::microseconds(static_cast<std::int64_t>(us));
  if (delay.count() <= 0) {
    Backoff b;
    b.pause();
    return;
  }
  std::this_thread::sleep_for(delay);
}

}  // namespace detail

/// Run `op` (a callable returning Status) up to policy.max_attempts times,
/// waiting `delay(retry_index)` between attempts (retry_index is 0-based:
/// 0 before the first retry). Non-retriable codes surface immediately.
/// `stats` may be null. The delay callable owns the wait entirely — pass
/// serve::BackoffSequence-backed jitter for shared-fate retry storms, or a
/// no-op for tests that must not sleep.
template <typename F, typename DelayFn>
Status retry_status(const RetryPolicy& policy, RetryStats* stats,
                    std::string_view label, F&& op, DelayFn&& delay) {
  Status last;
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (stats != nullptr) stats->attempts.fetch_add(1, std::memory_order_relaxed);
    last = op();
    if (last.ok()) return last;
    const bool can_retry =
        attempt < max_attempts && policy.retriable != nullptr &&
        policy.retriable(last.code());
    if (stats != nullptr) {
      stats->record_failure(std::string(label), attempt, last.code(),
                            /*gave_up=*/!can_retry);
      if (can_retry) {
        stats->retries.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats->exhausted.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!can_retry) return last;
    delay(attempt - 1);
  }
  return last;
}

/// Fixed-ladder form: delays follow the policy's deterministic exponential
/// staircase (base_delay * multiplier^n, capped at max_delay).
template <typename F>
Status retry_status(const RetryPolicy& policy, RetryStats* stats,
                    std::string_view label, F&& op) {
  return retry_status(policy, stats, label, std::forward<F>(op),
                      [&policy](int retry_index) {
                        detail::retry_delay(policy, retry_index);
                      });
}

}  // namespace hs
