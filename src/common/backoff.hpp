// Spin-then-yield backoff used by the flow runtime's non-blocking mode and
// the taskx scheduler when queues are momentarily empty/full.
#pragma once

#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hs {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // best-effort on non-x86
  std::this_thread::yield();
#endif
}

/// Escalating backoff: pause spins, then yields, then short sleeps. Reset
/// whenever progress is made. Keeps latency low under load while avoiding
/// burning a core when a stream stalls (important on oversubscribed hosts).
class Backoff {
 public:
  void pause() {
    if (count_ < kSpinLimit) {
      cpu_relax();
    } else if (count_ < kYieldLimit) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++count_;
  }

  void reset() { count_ = 0; }

  [[nodiscard]] bool sleeping() const { return count_ >= kYieldLimit; }

 private:
  static constexpr int kSpinLimit = 64;
  static constexpr int kYieldLimit = 256;
  int count_ = 0;
};

}  // namespace hs
