#include "common/status.hpp"

namespace hs {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hs
