#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace hs {

void Table::set_header(std::vector<std::string> header) {
  assert(rows_.empty() && "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    assert(row.size() <= header_.size() && "row wider than header");
    row.resize(header_.size());
  }
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::render(std::ostream& os) const {
  // compute column widths
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = std::max(width[c], header_[c].size());
  }
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  auto print_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      print_rule();
    } else {
      print_cells(r.cells);
    }
  }
  print_rule();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += '"';
  return out;
}

}  // namespace

void Table::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const Row& r : rows_) {
    if (!r.separator) emit(r.cells);
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  render_csv(os);
  return os.str();
}

}  // namespace hs
