// Streaming statistics accumulator (Welford) used to report the paper's
// "arithmetic means and standard deviations over N samples", plus the
// counter block shared by the recycling allocators (common::BufferPool,
// cudax::PinnedPool).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace hs {

/// Counters of a recycling buffer pool. A hit hands back a cached slab
/// without touching the heap; a miss allocates. bytes_allocated is
/// cumulative (how much the pool ever requested from the allocator);
/// bytes_cached / bytes_outstanding are the current split of that memory
/// between the free lists and live handles.
struct PoolCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_cached = 0;
  std::uint64_t bytes_outstanding = 0;
};

/// The pools' internal bookkeeping form of PoolCounters. Each field is an
/// individually atomic u64 so a snapshot never observes a torn value, no
/// matter which lock (if any) the mutating path holds — a metrics scrape
/// from the telemetry sampler thread reads these at high frequency without
/// contending the pool mutex. Relaxed ordering is sufficient: fields are
/// independent statistics, not a consistency group (a snapshot taken during
/// an acquire may see the hit counted before bytes_cached shrinks).
struct AtomicPoolCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> bytes_cached{0};
  std::atomic<std::uint64_t> bytes_outstanding{0};

  /// Torn-read-safe copy for reporting.
  [[nodiscard]] PoolCounters snapshot() const {
    PoolCounters c;
    c.hits = hits.load(std::memory_order_relaxed);
    c.misses = misses.load(std::memory_order_relaxed);
    c.bytes_allocated = bytes_allocated.load(std::memory_order_relaxed);
    c.bytes_cached = bytes_cached.load(std::memory_order_relaxed);
    c.bytes_outstanding = bytes_outstanding.load(std::memory_order_relaxed);
    return c;
  }
};

/// Single-pass mean / variance / min / max accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// Population variance (the paper reports stddev over a fixed sample set).
  [[nodiscard]] double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Sample (Bessel-corrected) variance; 0 when n < 2.
  [[nodiscard]] double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double sample_stddev() const {
    return std::sqrt(sample_variance());
  }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double delta = other.mean_ - mean_;
    std::size_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ = total;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hs
