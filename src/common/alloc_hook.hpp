// Process-wide heap-allocation counter used by benches and tests to prove
// the pooled dedup datapath runs allocation-free in the steady state.
//
// Linking hs_common replaces the global operator new/delete with counting
// versions (see alloc_hook.cpp). The counters are relaxed atomics — cheap
// enough to leave on everywhere — and a test asserts the *delta* across a
// warmed pipeline pass is zero. Under ASan/MSan the sanitizer's allocator
// may interpose ahead of ours, so strict zero-delta assertions should be
// skipped when sanitizers are active.
#pragma once

#include <cstdint>

namespace hs {

/// Total calls into global operator new (all variants) since process start.
std::uint64_t heap_alloc_count();

/// Total bytes ever requested from global operator new.
std::uint64_t heap_alloc_bytes();

}  // namespace hs
