// ASCII table / CSV reporter used by the figure benches to print rows in the
// same layout as the paper's plots (one row per version, columns for time,
// speedup / throughput, stddev).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hs {

/// Column-aligned text table with an optional title, rendered to a stream.
/// Cells are strings; numeric formatting is the caller's job (format_fixed,
/// format_seconds, format_bytes).
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a row; it is padded or an assertion fires if the width differs
  /// from the header (when a header is set).
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator after the current last row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with box-drawing-free ASCII (pipes and dashes) so output is
  /// stable in logs and diffable in EXPERIMENTS.md.
  void render(std::ostream& os) const;

  /// Renders as CSV (header first). Separators are skipped; commas and
  /// quotes in cells are escaped per RFC 4180.
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace hs
