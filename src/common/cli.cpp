#include "common/cli.hpp"

#include <charconv>

#include "common/format.hpp"

namespace hs {

Result<CliArgs> CliArgs::Parse(int argc, const char* const* argv) {
  CliArgs out;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() < 2 || arg.substr(0, 2) != "--") {
      out.positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    if (body.empty()) {
      // bare "--": everything after is positional
      for (int j = i + 1; j < argc; ++j) out.positional_.emplace_back(argv[j]);
      break;
    }
    auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      std::string_view name = body.substr(0, eq);
      if (name.empty()) return InvalidArgument("malformed flag: " + std::string(arg));
      out.flags_[std::string(name)] = std::string(body.substr(eq + 1));
      continue;
    }
    // "--no-foo" form for booleans
    if (body.substr(0, 3) == "no-") {
      out.flags_[std::string(body.substr(3))] = "false";
      continue;
    }
    // "--name value" if the next token is not a flag, else boolean true
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      out.flags_[std::string(body)] = argv[i + 1];
      ++i;
    } else {
      out.flags_[std::string(body)] = "true";
    }
  }
  return out;
}

bool CliArgs::has(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

std::string CliArgs::get_string(std::string_view name,
                                std::string fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(std::string_view name,
                              std::int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(it->second.data(),
                                   it->second.data() + it->second.size(), v);
  if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
    return fallback;
  }
  return v;
}

double CliArgs::get_double(std::string_view name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double v = 0;
  auto [ptr, ec] = std::from_chars(it->second.data(),
                                   it->second.data() + it->second.size(), v);
  if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
    return fallback;
  }
  return v;
}

bool CliArgs::get_bool(std::string_view name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

std::uint64_t CliArgs::get_bytes(std::string_view name,
                                 std::uint64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = parse_bytes(it->second);
  return parsed.ok() ? parsed.value() : fallback;
}

Result<std::int64_t> CliArgs::get_int_in_range(std::string_view name,
                                               std::int64_t fallback,
                                               std::int64_t min,
                                               std::int64_t max) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(it->second.data(),
                                   it->second.data() + it->second.size(), v);
  if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
    return InvalidArgument("--" + std::string(name) + "=" + it->second +
                           ": not an integer");
  }
  if (v < min || v > max) {
    std::string msg = "--" + std::string(name) + "=" + it->second +
                      ": must be >= " + std::to_string(min);
    if (max != std::numeric_limits<std::int64_t>::max()) {
      msg += " and <= " + std::to_string(max);
    }
    return InvalidArgument(std::move(msg));
  }
  return v;
}

Result<std::uint64_t> CliArgs::get_bytes_in_range(std::string_view name,
                                                  std::uint64_t fallback,
                                                  std::uint64_t min,
                                                  std::uint64_t max) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = parse_bytes(it->second);
  if (!parsed.ok()) {
    return InvalidArgument("--" + std::string(name) + "=" + it->second + ": " +
                           parsed.status().message());
  }
  const std::uint64_t v = parsed.value();
  if (v < min || v > max) {
    std::string msg = "--" + std::string(name) + "=" + it->second +
                      ": must be >= " + std::to_string(min) + " bytes";
    if (max != std::numeric_limits<std::uint64_t>::max()) {
      msg += " and <= " + std::to_string(max) + " bytes";
    }
    return InvalidArgument(std::move(msg));
  }
  return v;
}

}  // namespace hs
