// Deterministic, fast PRNG (xoshiro256**) used by dataset generators,
// property tests, and the simulator's jitter model.
//
// Determinism matters: the three synthetic corpora substituting for the
// paper's datasets must be reproducible from a seed so throughput numbers in
// EXPERIMENTS.md are stable run-to-run.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hs {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  /// Uses Lemire's multiply-shift rejection-free variant (slight bias is
  /// below 2^-64 * bound, irrelevant for data generation).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish run length: minimum 1, mean roughly `mean`.
  /// Uses the exponential inverse-CDF approximation, adequate for shaping
  /// duplicate-run and literal-run lengths in generated corpora.
  std::uint64_t run_length(double mean) {
    if (mean <= 1.0) return 1;
    double u = uniform();
    if (u <= 1e-18) u = 1e-18;
    double len = 1.0 - (mean - 1.0) * __builtin_log(u);
    if (len > 1e9) len = 1e9;
    return static_cast<std::uint64_t>(len);
  }

  /// Split off an independently-seeded child generator (for parallel stages).
  Xoshiro256 split() { return Xoshiro256((*this)() ^ 0xD1B54A32D192ED03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hs
