// Thread-safe size-classed buffer pool and its vector-like RAII handle.
//
// The dedup datapath allocates the same handful of buffer shapes once per
// stream item (batch payload, per-block compressed output, GPU staging);
// the paper's lesson is that heterogeneous stream throughput is won or
// lost in exactly this per-item datapath overhead. BufferPool recycles
// those buffers: capacities are rounded up to a power-of-two class and
// released slabs return to the class free list, so a warmed pipeline runs
// allocation-free in the steady state (asserted by tests through the
// alloc_hook counters).
//
// PooledBuffer is the std::vector<uint8_t>-shaped handle call sites use.
// It deep-copies on copy (stream items must stay copyable) and keeps its
// heap pointer stable across moves, so spans into the buffer survive a
// move of the owning item.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <vector>

#include "common/stats.hpp"

namespace hs {

/// Size-classed recycling arena for byte slabs. All methods are
/// thread-safe; handles hand slabs back from any thread.
class BufferPool {
 public:
  struct Slab {
    std::uint8_t* ptr = nullptr;
    std::size_t capacity = 0;
  };

  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 26;
  static constexpr std::size_t kDefaultMaxCachedBytes = std::size_t{256} << 20;

  /// `max_cached_bytes` bounds the free lists: a release that would exceed
  /// it frees the slab instead of caching it.
  explicit BufferPool(std::size_t max_cached_bytes = kDefaultMaxCachedBytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Process-wide pool used by default-constructed PooledBuffers.
  static BufferPool& Default();

  /// A slab of at least `min_bytes` capacity (power-of-two class; requests
  /// above kMaxClassBytes are exact-size one-offs that are never cached).
  Slab acquire(std::size_t min_bytes);

  /// Returns a slab to its class free list (or the heap when over the
  /// cache bound / oversized). Accepts default (null) slabs.
  void release(Slab slab);

  /// Frees every cached slab.
  void trim();

  /// Torn-read-safe snapshot (atomic per-field reads; does not take the
  /// pool mutex, so it is cheap to poll from a sampler thread).
  [[nodiscard]] PoolCounters counters() const;

 private:
  static std::size_t class_index(std::size_t capacity);
  static std::size_t class_capacity(std::size_t min_bytes);

  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t*>> free_;
  AtomicPoolCounters counters_;
  std::size_t max_cached_bytes_;
};

/// A std::vector<uint8_t>-like byte buffer whose storage comes from a
/// BufferPool. Not thread-safe (like vector); destruction returns the slab
/// to the pool. Copy is a deep copy drawing from the same pool.
class PooledBuffer {
 public:
  using value_type = std::uint8_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;

  PooledBuffer() = default;
  explicit PooledBuffer(BufferPool* pool) : pool_(pool) {}
  ~PooledBuffer() { reset(); }

  PooledBuffer(const PooledBuffer& other) : pool_(other.pool_) {
    assign(other.span());
  }
  PooledBuffer& operator=(const PooledBuffer& other) {
    if (this != &other) assign(other.span());
    return *this;
  }
  PooledBuffer(PooledBuffer&& other) noexcept
      : slab_(other.slab_), size_(other.size_), pool_(other.pool_) {
    other.slab_ = {};
    other.size_ = 0;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = other.slab_;
      size_ = other.size_;
      pool_ = other.pool_;
      other.slab_ = {};
      other.size_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::uint8_t* data() { return slab_.ptr; }
  [[nodiscard]] const std::uint8_t* data() const { return slab_.ptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slab_.capacity; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] iterator begin() { return slab_.ptr; }
  [[nodiscard]] iterator end() { return slab_.ptr + size_; }
  [[nodiscard]] const_iterator begin() const { return slab_.ptr; }
  [[nodiscard]] const_iterator end() const { return slab_.ptr + size_; }

  std::uint8_t& operator[](std::size_t i) { return slab_.ptr[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return slab_.ptr[i]; }

  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {slab_.ptr, size_};
  }
  operator std::span<const std::uint8_t>() const { return span(); }
  operator std::span<std::uint8_t>() { return {slab_.ptr, size_}; }

  /// Drops the contents but keeps the slab for reuse.
  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > slab_.capacity) grow(n);
  }

  void resize(std::size_t n) {
    reserve(n);
    if (n > size_) std::memset(slab_.ptr + size_, 0, n - size_);
    size_ = n;
  }

  void push_back(std::uint8_t b) {
    if (size_ == slab_.capacity) grow(size_ + 1);
    slab_.ptr[size_++] = b;
  }

  void append(const std::uint8_t* p, std::size_t n) {
    if (n == 0) return;
    reserve(size_ + n);
    std::memcpy(slab_.ptr + size_, p, n);
    size_ += n;
  }

  void assign(std::span<const std::uint8_t> bytes) {
    size_ = 0;
    append(bytes.data(), bytes.size());
  }

  /// Returns the slab to the pool and empties the buffer.
  void reset() {
    if (slab_.ptr != nullptr) pool().release(slab_);
    slab_ = {};
    size_ = 0;
  }

  friend bool operator==(const PooledBuffer& a, const PooledBuffer& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.slab_.ptr, b.slab_.ptr, a.size_) == 0);
  }
  friend bool operator!=(const PooledBuffer& a, const PooledBuffer& b) {
    return !(a == b);
  }

 private:
  BufferPool& pool() const {
    return pool_ != nullptr ? *pool_ : BufferPool::Default();
  }

  void grow(std::size_t min_capacity) {
    std::size_t want = slab_.capacity * 2;
    if (want < min_capacity) want = min_capacity;
    BufferPool::Slab next = pool().acquire(want);
    if (size_ > 0) std::memcpy(next.ptr, slab_.ptr, size_);
    if (slab_.ptr != nullptr) pool().release(slab_);
    slab_ = next;
  }

  BufferPool::Slab slab_;
  std::size_t size_ = 0;
  BufferPool* pool_ = nullptr;  ///< null = BufferPool::Default()
};

}  // namespace hs
