// String formatting helpers: hex digests, byte-size units, fixed-point
// numbers. Shared by reporters, the dedup container, and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hs {

/// Lower-case hex encoding of a byte span ("a1b2...").
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parses lower/upper-case hex into bytes. Fails on odd length or non-hex.
Result<std::basic_string<std::uint8_t>> from_hex(std::string_view hex);

/// "1.50 GB", "202.13 MB", "512 B" — decimal units as the paper uses them
/// (185MB, 816MB, 202.13MB).
std::string format_bytes(std::uint64_t bytes);

/// Parses "185MB", "1.5 GiB", "4096", "12kb". Decimal (kB/MB/GB) and binary
/// (KiB/MiB/GiB) suffixes; bare numbers are bytes.
Result<std::uint64_t> parse_bytes(std::string_view text);

/// Fixed-point decimal with `digits` fractional digits, no locale.
std::string format_fixed(double value, int digits);

/// "12.3s", "450ms", "9.1us" — duration pretty-printer for reports
/// (input is seconds).
std::string format_seconds(double seconds);

}  // namespace hs
