// Move-only type-erased callable (std::move_only_function is C++23; this
// project targets C++20). Tasks in the taskx pool capture move-only stream
// items, which std::function cannot hold.
#pragma once

#include <cassert>
#include <memory>
#include <type_traits>
#include <utility>

namespace hs {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT: mirror std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f)  // NOLINT: implicit, mirror std::function
      : callable_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const { return callable_ != nullptr; }

  R operator()(Args... args) {
    assert(callable_ && "calling empty UniqueFunction");
    return callable_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R invoke(Args&&... args) = 0;
  };

  template <typename F>
  struct Impl final : Base {
    explicit Impl(F&& f) : fn(std::move(f)) {}
    explicit Impl(const F& f) : fn(f) {}
    R invoke(Args&&... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Base> callable_;
};

}  // namespace hs
