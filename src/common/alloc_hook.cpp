#include "common/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* ptr = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&ptr, align, size ? size : align) != 0) return nullptr;
  return ptr;
}

}  // namespace

namespace hs {

std::uint64_t heap_alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t heap_alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

}  // namespace hs

// Counting replacements for the global allocation functions. Defined in the
// hs_common archive; any binary referencing hs::heap_alloc_count() pulls in
// this TU and therefore the replacements. malloc/free-backed so the
// sized/unsized delete variants can share one free path.

void* operator new(std::size_t size) {
  if (void* ptr = counted_alloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* ptr = counted_alloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* ptr =
          counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* ptr =
          counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}
