// Minimal command-line flag parser for benches and examples.
// Supports --name=value, --name value, and boolean --flag / --no-flag.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hs {

/// Parses argv into named flags and positional arguments. Unknown flags are
/// collected (callers decide whether to reject) so benches can share common
/// option sets.
class CliArgs {
 public:
  /// Parses argv[1..argc). Returns an error for malformed flags ("--=x").
  static Result<CliArgs> Parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;

  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// "185MB"-style sizes.
  [[nodiscard]] std::uint64_t get_bytes(std::string_view name,
                                        std::uint64_t fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hs
