// Minimal command-line flag parser for benches and examples.
// Supports --name=value, --name value, and boolean --flag / --no-flag.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hs {

/// Parses argv into named flags and positional arguments. Unknown flags are
/// collected (callers decide whether to reject) so benches can share common
/// option sets.
class CliArgs {
 public:
  /// Parses argv[1..argc). Returns an error for malformed flags ("--=x").
  static Result<CliArgs> Parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;

  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// "185MB"-style sizes.
  [[nodiscard]] std::uint64_t get_bytes(std::string_view name,
                                        std::uint64_t fallback) const;

  /// Validating variants. Unlike get_int/get_bytes (which silently fall back
  /// on malformed input), these return InvalidArgument when the flag is
  /// present but unparseable or outside [min, max] — worker counts, batch
  /// sizes and token budgets of 0 or below would otherwise construct empty
  /// farms or divide by zero deep in a bench. Absent flag returns `fallback`
  /// unchecked, so defaults stay the caller's business.
  [[nodiscard]] Result<std::int64_t> get_int_in_range(
      std::string_view name, std::int64_t fallback, std::int64_t min,
      std::int64_t max = std::numeric_limits<std::int64_t>::max()) const;
  [[nodiscard]] Result<std::int64_t> get_positive_int(
      std::string_view name, std::int64_t fallback) const {
    return get_int_in_range(name, fallback, 1);
  }
  [[nodiscard]] Result<std::uint64_t> get_bytes_in_range(
      std::string_view name, std::uint64_t fallback, std::uint64_t min,
      std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) const;
  [[nodiscard]] Result<std::uint64_t> get_positive_bytes(
      std::string_view name, std::uint64_t fallback) const {
    return get_bytes_in_range(name, fallback, 1);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hs
