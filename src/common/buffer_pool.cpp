#include "common/buffer_pool.hpp"

#include <bit>
#include <new>

namespace hs {
namespace {

constexpr std::size_t kNumClasses = 21;  // 64B (2^6) .. 64MB (2^26)

}  // namespace

BufferPool::BufferPool(std::size_t max_cached_bytes)
    : free_(kNumClasses), max_cached_bytes_(max_cached_bytes) {}

BufferPool::~BufferPool() { trim(); }

BufferPool& BufferPool::Default() {
  // Leaked singleton: handles may outlive static destruction order.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

std::size_t BufferPool::class_capacity(std::size_t min_bytes) {
  if (min_bytes <= kMinClassBytes) return kMinClassBytes;
  return std::bit_ceil(min_bytes);
}

std::size_t BufferPool::class_index(std::size_t capacity) {
  // capacity is a power of two in [kMinClassBytes, kMaxClassBytes].
  return static_cast<std::size_t>(std::countr_zero(capacity)) - 6;
}

BufferPool::Slab BufferPool::acquire(std::size_t min_bytes) {
  const std::size_t cap = class_capacity(min_bytes);
  if (cap <= kMaxClassBytes) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& list = free_[class_index(cap)];
    if (!list.empty()) {
      Slab slab{list.back(), cap};
      list.pop_back();
      counters_.hits.fetch_add(1, std::memory_order_relaxed);
      counters_.bytes_cached.fetch_sub(cap, std::memory_order_relaxed);
      counters_.bytes_outstanding.fetch_add(cap, std::memory_order_relaxed);
      return slab;
    }
  }
  // Miss: allocate outside the lock. Oversize requests get the exact size
  // and are never cached.
  const std::size_t alloc = cap <= kMaxClassBytes ? cap : min_bytes;
  Slab slab{static_cast<std::uint8_t*>(::operator new(alloc)), alloc};
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_allocated.fetch_add(alloc, std::memory_order_relaxed);
  counters_.bytes_outstanding.fetch_add(alloc, std::memory_order_relaxed);
  return slab;
}

void BufferPool::release(Slab slab) {
  if (slab.ptr == nullptr) return;
  counters_.bytes_outstanding.fetch_sub(slab.capacity,
                                        std::memory_order_relaxed);
  if (slab.capacity <= kMaxClassBytes &&
      std::has_single_bit(slab.capacity)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.bytes_cached.load(std::memory_order_relaxed) +
            slab.capacity <=
        max_cached_bytes_) {
      free_[class_index(slab.capacity)].push_back(slab.ptr);
      counters_.bytes_cached.fetch_add(slab.capacity,
                                       std::memory_order_relaxed);
      return;
    }
  }
  ::operator delete(slab.ptr);
}

void BufferPool::trim() {
  std::vector<std::vector<std::uint8_t*>> drained(kNumClasses);
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(free_);
    counters_.bytes_cached.store(0, std::memory_order_relaxed);
  }
  for (auto& list : drained)
    for (std::uint8_t* ptr : list) ::operator delete(ptr);
}

PoolCounters BufferPool::counters() const { return counters_.snapshot(); }

}  // namespace hs
