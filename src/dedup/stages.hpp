// The five Dedup pipeline stages as reusable functions (Fig. 3). Every
// pipeline variant (sequential, SPar CPU, SPar+GPU, single-thread
// CUDA/OpenCL) composes these, so all variants produce bit-identical
// archives.
//
//  1. fragment_input : fixed-size batches + rabin start_pos (CPU, serial)
//  2. hash_blocks    : SHA-1 per block (replicated; GPU = 1 thread/block)
//  3. check_duplicates: global digest table, assigns ids (serial in-order)
//  4. compress_blocks: LZSS on unique blocks (replicated; GPU = batched
//     FindMatch kernel + CPU encode walk)
//  5. ArchiveWriter  : reorder + write (serial in-order; see container.hpp)
#pragma once

#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "dedup/types.hpp"

namespace hs::dedup {

/// Stage 1: cuts `input` into config.batch_size batches and computes each
/// batch's rabin block index. Returns batches in order.
std::vector<Batch> fragment_input(std::span<const std::uint8_t> input,
                                  const DedupConfig& config);

/// Streaming form of stage 1: fragment of one batch (used by pipeline
/// sources that do not want to materialize the whole input).
Batch fragment_batch(std::span<const std::uint8_t> chunk,
                     std::uint64_t index, const DedupConfig& config);

/// Allocation-free form of stage 1: refills a (possibly recycled) batch in
/// place with a caller-owned Rabin — hoisting the table construction out
/// of the per-batch path and reusing the batch's slab and vector
/// capacities. Produces exactly the batch fragment_batch would.
void fragment_batch_into(std::span<const std::uint8_t> chunk,
                         std::uint64_t index, const kernels::Rabin& rabin,
                         Batch& batch);

/// PARSEC's original fragmentation, before the paper's GPU refactor: batch
/// boundaries are themselves content-defined (a coarse rabin pass), so
/// batch sizes vary widely around config.batch_size — which is exactly why
/// the paper switched to fixed-size batches ("to best benefit from GPU
/// capabilities when a large batch of data has to process", §IV-B).
/// Exposed for the DESIGN.md §4.3 ablation.
std::vector<Batch> fragment_input_variable(
    std::span<const std::uint8_t> input, const DedupConfig& config);

/// Stage 2: fills BlockInfo::digest for every block (CPU reference path;
/// GPU variants run one simulated thread per block instead).
void hash_blocks(Batch& batch);

/// Total SHA-1 compression rounds of a batch (cost accounting).
std::uint64_t batch_sha1_rounds(const Batch& batch);

/// Hash of a SHA-1 digest for the duplicate table: the digest is already
/// uniformly distributed, so folding its words is enough. Keying the table
/// by the 20-byte array directly (instead of a std::string, which exceeds
/// the small-string optimization) keeps the per-block lookup heap-free.
struct DigestHash {
  std::size_t operator()(const kernels::Sha1Digest& d) const {
    std::uint64_t a, b;
    std::uint32_t c;
    std::memcpy(&a, d.data(), 8);
    std::memcpy(&b, d.data() + 8, 8);
    std::memcpy(&c, d.data() + 16, 4);
    std::uint64_t h = a;
    h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= c + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Stage 3's global digest table: digest -> global id of first occurrence.
/// Thread-safe lookups are not needed (the stage is serial in every
/// variant) but the class is internally consistent if shared.
class DupCache {
 public:
  /// Returns the number of unique blocks registered so far.
  [[nodiscard]] std::uint64_t unique_count() const;

  /// Stage 3 body: marks duplicates and assigns global ids in order.
  void check(Batch& batch);

 private:
  mutable std::mutex mu_;
  std::unordered_map<kernels::Sha1Digest, std::uint64_t, DigestHash> ids_;
  std::uint64_t next_id_ = 0;
};

/// Stage 4 (CPU path): LZSS-compresses every unique block directly.
void compress_blocks_cpu(Batch& batch, const DedupConfig& config);

/// Stage 4 (GPU path), step 1: batched FindMatch over the whole batch
/// (Listing 3) — the simulated-GPU variants execute this as a kernel; this
/// CPU form is the reference used in tests.
void find_batch_matches(Batch& batch, const DedupConfig& config);

/// Stage 4 (GPU path), step 2: CPU encode walk over the precomputed
/// matches for unique blocks only ("In CPU, we used the result of the
/// kernel function to run the compression on each block").
void compress_blocks_from_matches(Batch& batch, const DedupConfig& config);

/// FindMatch kernel cost units of the whole batch (sum over positions of
/// the Listing 3 scan length), for the performance model.
std::uint64_t batch_match_cost(const Batch& batch, const DedupConfig& config);

/// Compressed output bytes of a processed batch (unique payloads + record
/// overhead), for throughput accounting.
std::uint64_t batch_output_bytes(const Batch& batch);

}  // namespace hs::dedup
