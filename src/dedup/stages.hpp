// The five Dedup pipeline stages as reusable functions (Fig. 3). Every
// pipeline variant (sequential, SPar CPU, SPar+GPU, single-thread
// CUDA/OpenCL) composes these, so all variants produce bit-identical
// archives.
//
//  1. fragment_input : fixed-size batches + rabin start_pos (CPU, serial)
//  2. hash_blocks    : SHA-1 per block (replicated; GPU = 1 thread/block)
//  3. check_duplicates: global digest table, assigns ids (serial in-order)
//  4. compress_blocks: LZSS on unique blocks (replicated; GPU = batched
//     FindMatch kernel + CPU encode walk)
//  5. ArchiveWriter  : reorder + write (serial in-order; see container.hpp)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dedup/dup_store.hpp"
#include "dedup/types.hpp"

namespace hs::dedup {

/// Stage 1: cuts `input` into config.batch_size batches and computes each
/// batch's rabin block index. Returns batches in order.
std::vector<Batch> fragment_input(std::span<const std::uint8_t> input,
                                  const DedupConfig& config);

/// Streaming form of stage 1: fragment of one batch (used by pipeline
/// sources that do not want to materialize the whole input).
Batch fragment_batch(std::span<const std::uint8_t> chunk,
                     std::uint64_t index, const DedupConfig& config);

/// Allocation-free form of stage 1: refills a (possibly recycled) batch in
/// place with a caller-owned Rabin — hoisting the table construction out
/// of the per-batch path and reusing the batch's slab and vector
/// capacities. Produces exactly the batch fragment_batch would.
void fragment_batch_into(std::span<const std::uint8_t> chunk,
                         std::uint64_t index, const kernels::Rabin& rabin,
                         Batch& batch);

/// PARSEC's original fragmentation, before the paper's GPU refactor: batch
/// boundaries are themselves content-defined (a coarse rabin pass), so
/// batch sizes vary widely around config.batch_size — which is exactly why
/// the paper switched to fixed-size batches ("to best benefit from GPU
/// capabilities when a large batch of data has to process", §IV-B).
/// Exposed for the DESIGN.md §4.3 ablation.
std::vector<Batch> fragment_input_variable(
    std::span<const std::uint8_t> input, const DedupConfig& config);

/// Stage 2: fills BlockInfo::digest for every block (CPU reference path;
/// GPU variants run one simulated thread per block instead). With a store
/// attached, every digest is also record()ed into it as soon as it is
/// computed — concurrently safe, so replicated hash workers all feed the
/// same store — and BlockInfo::store_hit is set from the store's answer.
void hash_blocks(Batch& batch, DupStore* store = nullptr);

/// Total SHA-1 compression rounds of a batch (cost accounting).
std::uint64_t batch_sha1_rounds(const Batch& batch);

/// Stage 3's digest table grew into the persistent sharded DupStore
/// (dup_store.hpp); the historical name stays as an alias — check() and
/// unique_count() behave exactly as the old archive-local cache did, and a
/// default-constructed DupStore is a pure in-memory table.
using DupCache = DupStore;

/// Stage 4 (CPU path): LZSS-compresses every unique block directly.
void compress_blocks_cpu(Batch& batch, const DedupConfig& config);

/// Stage 4 (GPU path), step 1: batched FindMatch over the whole batch
/// (Listing 3) — the simulated-GPU variants execute this as a kernel; this
/// CPU form is the reference used in tests.
void find_batch_matches(Batch& batch, const DedupConfig& config);

/// Stage 4 (GPU path), step 2: CPU encode walk over the precomputed
/// matches for unique blocks only ("In CPU, we used the result of the
/// kernel function to run the compression on each block").
void compress_blocks_from_matches(Batch& batch, const DedupConfig& config);

/// FindMatch kernel cost units of the whole batch (sum over positions of
/// the Listing 3 scan length), for the performance model.
std::uint64_t batch_match_cost(const Batch& batch, const DedupConfig& config);

/// Compressed output bytes of a processed batch (unique payloads + record
/// overhead), for throughput accounting.
std::uint64_t batch_output_bytes(const Batch& batch);

}  // namespace hs::dedup
