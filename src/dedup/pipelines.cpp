#include "dedup/pipelines.hpp"

#include <chrono>
#include <cstring>
#include <map>
#include <optional>

#include "cudax/cudax.hpp"
#include "cudax/pinned_pool.hpp"
#include "dedup/stages.hpp"
#include "flow/adapters.hpp"
#include "kernels/simd/sha1_ni.hpp"
#include "oclx/oclx.hpp"
#include "serve/backoff.hpp"
#include "spar/spar.hpp"
#include "telemetry/span_recorder.hpp"

namespace hs::dedup {

namespace {

kernels::Sha1Digest input_digest(std::span<const std::uint8_t> input) {
  // One whole-input single-stream hash at writer.finish() — this was a
  // third of archive_sequential's runtime on 8MB inputs before the SHA-NI
  // path (EXPERIMENTS.md); same digest either way.
  return kernels::simd::sha1_hash_fast(input);
}

/// Source generator over fixed-size chunks of the input. The Rabin tables
/// are built once here (not per batch), and with a BatchPool attached each
/// new batch reuses a retired batch's slab and vector capacities.
class BatchSource {
 public:
  BatchSource(std::span<const std::uint8_t> input, const DedupConfig& config,
              BatchPool* pool = nullptr)
      : input_(input), config_(config), rabin_(config.rabin), pool_(pool) {}

  std::optional<Batch> operator()() {
    if (offset_ >= input_.size()) return std::nullopt;
    std::size_t n =
        std::min<std::size_t>(config_.batch_size, input_.size() - offset_);
    Batch batch = pool_ != nullptr ? pool_->acquire() : Batch{};
    fragment_batch_into(input_.subspan(offset_, n), index_++, rabin_, batch);
    offset_ += n;
    return batch;
  }

 private:
  std::span<const std::uint8_t> input_;
  DedupConfig config_;
  kernels::Rabin rabin_;
  BatchPool* pool_;
  std::size_t offset_ = 0;
  std::uint64_t index_ = 0;
};

/// Generous upper bound on the archive size: payload (worst case the LZSS
/// 1-bit-per-byte expansion) + per-block record overhead + header/trailer.
std::size_t archive_reserve_bytes(std::size_t input_size) {
  return input_size + input_size / 8 + input_size / 64 + 4096;
}

/// Serial duplicate-check stage for the unordered-hash variant: batches
/// arrive in hash-completion order, but the container format requires
/// stream order here (unique blocks are numbered in stream order and a
/// duplicate must reference an id the decoder has already materialized).
/// Out-of-order batches wait in a small buffer keyed by source index; each
/// arrival drains every consecutive ready batch, so the stage emits the
/// exact sequence the ordered variant would and the archive stays
/// byte-identical.
class ReorderingDupCheck final : public flow::Node {
 public:
  explicit ReorderingDupCheck(DupCache* cache) : cache_(cache) {}

  flow::SvcResult svc(flow::Item in) override {
    Batch batch = in.take<Batch>();
    pending_.emplace(batch.index, std::move(batch));
    flow::SvcResult out = flow::SvcResult::GoOn();
    for (auto it = pending_.find(next_); it != pending_.end();
         it = pending_.find(next_)) {
      Batch ready = std::move(it->second);
      pending_.erase(it);
      ++next_;
      cache_->check(ready);
      // Flush the previously drained batch before holding this one so the
      // emission order stays monotone in source index.
      if (out.kind == flow::SvcResult::Kind::kItem) {
        (void)emit(std::move(out.item));
      }
      out = flow::SvcResult::Out(flow::Item::of<Batch>(std::move(ready)));
    }
    return out;
  }

 private:
  DupCache* cache_;
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, Batch> pending_;
};

}  // namespace

Result<std::vector<std::uint8_t>> archive_sequential(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    DupStore* store) {
  ArchiveWriter writer(config);
  writer.reserve(archive_reserve_bytes(input.size()));
  DupCache cache;
  BatchPool pool;
  BatchSource source(input, config, &pool);
  while (auto batch = source()) {
    hash_blocks(*batch, store);
    cache.check(*batch);
    compress_blocks_cpu(*batch, config);
    HS_RETURN_IF_ERROR(writer.append(*batch));
    pool.release(std::move(*batch));
  }
  return writer.finish(input_digest(input));
}

Result<std::vector<std::uint8_t>> archive_spar_cpu(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    const SparCpuOptions& options) {
  ArchiveWriter writer(config);
  writer.reserve(archive_reserve_bytes(input.size()));
  DupCache cache;
  BatchPool pool;
  Status append_status;

  // Both hot stages lower to farms regardless of worker count. The hash
  // farm may run unordered + least-loaded (opt-in); the compress farm is
  // always ordered so the writer appends batches in stream order.
  spar::StageOptions hash_opts;
  hash_opts.force_farm = true;
  if (!options.hash_ordered) {
    hash_opts.ordered = false;
    hash_opts.policy = flow::SchedPolicy::kLeastLoaded;
  }
  spar::StageOptions compress_opts;
  compress_opts.force_farm = true;
  compress_opts.ordered = true;

  spar::ToStream region("dedup");
  region.source<Batch>(BatchSource(input, config, &pool));
  region.stage<Batch, Batch>(spar::Replicate(options.workers_hash), hash_opts,
                             [store = options.store](Batch batch) {
                               hash_blocks(batch, store);
                               return batch;
                             });
  // The serial duplicate check is the ordering pivot: the container format
  // numbers unique blocks in stream order, so this stage must consume
  // batches in source order. With an ordered hash farm that is already
  // true; the unordered variant restores it here with a reorder buffer.
  if (options.hash_ordered) {
    region.stage<Batch, Batch>([&cache](Batch batch) {
      cache.check(batch);
      return batch;
    });
  } else {
    region.stage_nodes(spar::Replicate(1), [&cache] {
      return std::make_unique<ReorderingDupCheck>(&cache);
    });
  }
  region.stage<Batch, Batch>(spar::Replicate(options.workers_compress),
                             compress_opts, [config](Batch batch) {
                               compress_blocks_cpu(batch, config);
                               return batch;
                             });
  region.last_stage<Batch>([&writer, &append_status, &pool](Batch batch) {
    Status s = writer.append(batch);
    if (!s.ok() && append_status.ok()) append_status = s;
    pool.release(std::move(batch));
  });
  spar::Options run_opts;
  run_opts.pin = options.pin;
  HS_RETURN_IF_ERROR(region.run(run_opts));
  if (!append_status.ok()) return append_status;
  return writer.finish(input_digest(input));
}

Result<std::vector<std::uint8_t>> archive_spar_cpu(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    int replicas) {
  SparCpuOptions options;
  options.workers_hash = replicas;
  options.workers_compress = replicas;
  return archive_spar_cpu(input, config, options);
}

namespace {

/// Maps a shim error to the Status the retry layer reasons about.
Status cuda_status(cudax::cudaError e, const char* what) {
  if (e == cudax::cudaError::cudaSuccess) return OkStatus();
  return Status(cudax::error_code_of(e),
                std::string(what) + ": " + cudax::last_error_message());
}

/// Per-replica CUDA context for the GPU stages: a device chosen
/// round-robin by replica id (skipping lost devices), a stream, and scratch
/// device buffers sized on demand.
///
/// run() owns the degradation ladder shared by both GPU stages: retry the
/// whole per-batch device pass on transient errors, migrate to a surviving
/// device when the current one is lost, and report the final failure so
/// the caller can run the equivalent CPU stage instead.
class CudaStageContext {
 public:
  CudaStageContext(gpusim::Machine* machine, int replica_id, RetryStats* stats,
                   const RetryPolicy& policy,
                   sched::DeviceLoadTracker* tracker = nullptr)
      : machine_(machine), replica_(replica_id), stats_(stats),
        policy_(policy), tracker_(tracker),
        backoff_(serve::BackoffPolicy{policy.base_delay, policy.max_delay},
                 0x646564757Aull + static_cast<std::uint64_t>(replica_id)) {}

  /// Retry delay hook: decorrelated jitter, restarted per operation.
  auto jitter_delay() {
    return [this](int retry_index) {
      if (retry_index == 0) backoff_.reset();
      std::this_thread::sleep_for(backoff_.next());
    };
  }

  /// Runs `gpu_pass` (the complete per-batch device sequence, returning
  /// Status; must be idempotent) under the retry policy, migrating across
  /// devices on loss. On failure the caller degrades to the CPU stage.
  template <typename F>
  Status run(std::string_view label, F&& gpu_pass) {
    if (tracker_ != nullptr) return run_adaptive(label, gpu_pass);
    if (!ready_ && !try_setup(device_ >= 0 ? device_ : replica_)) {
      return Unavailable("no usable CUDA device");
    }
    while (true) {
      (void)cudax::cudaSetDevice(device_);
      Status s =
          retry_status(policy_, stats_, label, gpu_pass, jitter_delay());
      if (s.ok() || s.code() != ErrorCode::kUnavailable) return s;
      // Device lost: its allocations are gone; migrate to a survivor.
      if (stats_ != nullptr) {
        stats_->device_losses.fetch_add(1, std::memory_order_relaxed);
      }
      buffers_.clear();
      ready_ = false;
      if (!try_setup(device_ + 1)) return s;
      if (stats_ != nullptr) {
        stats_->device_switches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Adaptive variant: the device is re-chosen per batch through the
  /// tracker (sticky unless another device is idle or ours is lost),
  /// service time feeds the EWMA, and a lost device is excluded for every
  /// worker at once.
  template <typename F>
  Status run_adaptive(std::string_view label, F&& gpu_pass) {
    const int want = tracker_->acquire_preferring(device_);
    if (want < 0) return Unavailable("all CUDA devices excluded");
    if (ready_ && want != device_) {
      // Voluntary rebind (steal): release scratch on the old, still-live
      // device before moving.
      (void)cudax::cudaSetDevice(device_);
      for (auto& buf : buffers_) {
        if (buf.ptr != nullptr) (void)cudax::cudaFree(buf.ptr);
      }
      buffers_.clear();
      ready_ = false;
    }
    if (!ready_ && !try_setup(want)) {
      tracker_->abandon(want);
      return Unavailable("no usable CUDA device");
    }
    int charged = want;
    if (device_ != charged) {
      tracker_->transfer(charged, device_);
      charged = device_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
      (void)cudax::cudaSetDevice(device_);
      Status s =
          retry_status(policy_, stats_, label, gpu_pass, jitter_delay());
      if (s.ok()) {
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        tracker_->release(charged, dt.count());
        return s;
      }
      if (s.code() != ErrorCode::kUnavailable) {
        tracker_->abandon(charged);
        return s;
      }
      if (stats_ != nullptr) {
        stats_->device_losses.fetch_add(1, std::memory_order_relaxed);
      }
      tracker_->exclude(device_);
      buffers_.clear();
      ready_ = false;
      const int next = tracker_->acquire_preferring(-1);
      if (next >= 0) tracker_->abandon(next);  // only a routing hint
      if (next < 0 || !try_setup(next)) {
        tracker_->abandon(charged);
        return s;
      }
      tracker_->transfer(charged, device_);
      charged = device_;
      if (stats_ != nullptr) {
        stats_->device_switches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Device scratch of at least `bytes`; grows geometrically.
  Result<void*> scratch(std::size_t slot, std::size_t bytes) {
    if (slot >= buffers_.size()) buffers_.resize(slot + 1);
    auto& buf = buffers_[slot];
    if (buf.size < bytes) {
      if (buf.ptr != nullptr) (void)cudax::cudaFree(buf.ptr);
      std::size_t want = std::max(bytes, buf.size * 2);
      buf.ptr = nullptr;
      buf.size = 0;
      if (cudax::cudaError e = cudax::cudaMalloc(&buf.ptr, want);
          e != cudax::cudaError::cudaSuccess) {
        return Status(cudax::error_code_of(e),
                      "device scratch allocation failed: " +
                          cudax::last_error_message());
      }
      buf.size = want;
    }
    return buf.ptr;
  }

  void release() {
    if (stream_device_ >= 0) {
      (void)cudax::cudaStreamDestroy(stream_);
      stream_device_ = -1;
    }
    if (!ready_) return;
    (void)cudax::cudaSetDevice(device_);
    for (auto& buf : buffers_) {
      if (buf.ptr != nullptr) (void)cudax::cudaFree(buf.ptr);
    }
    buffers_.clear();
  }

  [[nodiscard]] cudax::cudaStream_t stream() const { return stream_; }
  [[nodiscard]] int device() const { return device_; }

 private:
  /// Binds to the first surviving device at or after `hint`. A device that
  /// dies during setup is skipped; false means CPU-only from here on.
  bool try_setup(int hint) {
    int start = hint < 0 ? 0 : hint;
    while (true) {
      const int d = gpusim::pick_surviving_device(*machine_, start);
      if (d < 0) return false;
      Status s = retry_status(policy_, stats_, "dedup.setup",
                              [&] { return setup_on(d); }, jitter_delay());
      if (s.ok()) {
        device_ = d;
        ready_ = true;
        return true;
      }
      if (s.code() == ErrorCode::kUnavailable) {
        start = d + 1;
        continue;
      }
      return false;
    }
  }

  Status setup_on(int d) {
    Status s = cuda_status(cudax::cudaSetDevice(d), "cudaSetDevice failed");
    if (!s.ok()) return s;
    // One stream per device binding; re-setup after a migration destroys
    // the previous stream (best effort on a lost device) rather than
    // leaking one simulated stream per attempt.
    if (stream_device_ == d) return OkStatus();
    if (stream_device_ >= 0) (void)cudax::cudaStreamDestroy(stream_);
    stream_device_ = -1;
    s = cuda_status(cudax::cudaStreamCreate(&stream_),
                    "cudaStreamCreate failed");
    if (s.ok()) stream_device_ = d;
    return s;
  }

  struct Scratch {
    void* ptr = nullptr;
    std::size_t size = 0;
  };
  gpusim::Machine* machine_;
  int replica_;
  RetryStats* stats_;
  RetryPolicy policy_;
  sched::DeviceLoadTracker* tracker_ = nullptr;
  serve::BackoffSequence backoff_;
  int device_ = -1;
  int stream_device_ = -1;  ///< device the live stream_ was created on
  bool ready_ = false;
  cudax::cudaStream_t stream_{};
  std::vector<Scratch> buffers_;
};

/// SHA-1 stage on the simulated GPU: one thread per block (paper stage 2).
/// On unrecoverable device failure the batch is hashed by the CPU stage
/// function instead — same digests, so the archive is unchanged.
class CudaHashWorker final : public flow::Node {
 public:
  CudaHashWorker(gpusim::Machine* machine, RetryStats* stats,
                 RetryPolicy policy,
                 sched::DeviceLoadTracker* tracker = nullptr)
      : machine_(machine), stats_(stats), policy_(policy), tracker_(tracker) {}

  void on_init(int replica_id) override {
    ctx_ = std::make_unique<CudaStageContext>(machine_, replica_id, stats_,
                                              policy_, tracker_);
  }

  flow::SvcResult svc(flow::Item in) override {
    Batch batch = in.take<Batch>();
    const std::size_t nblocks = batch.blocks.size();
    if (nblocks == 0) {
      return flow::SvcResult::Out(flow::Item::of<Batch>(std::move(batch)));
    }
    // Digest staging from the pinned pool (fast simulated transfers, no
    // per-batch allocation); pageable member fallback when pinned memory
    // is unavailable.
    const std::size_t need = nblocks * 20;
    if (staging_.capacity() < need) {
      staging_ = cudax::PinnedPool::Default().acquire(need);
    }
    std::uint8_t* digests;
    if (staging_.valid()) {
      digests = staging_.data();
    } else {
      if (fallback_.size() < need) fallback_.resize(need);
      digests = fallback_.data();
    }
    Status s = ctx_->run("dedup.sha1",
                         [&] { return hash_pass(batch, digests); });
    if (!s.ok()) {
      hash_blocks(batch);  // bit-exact CPU stage
      if (stats_ != nullptr) {
        stats_->cpu_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
      return flow::SvcResult::Out(flow::Item::of<Batch>(std::move(batch)));
    }
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::copy(digests + b * 20, digests + b * 20 + 20,
                batch.blocks[b].digest.begin());
    }
    return flow::SvcResult::Out(flow::Item::of<Batch>(std::move(batch)));
  }

  void on_end() override {
    if (ctx_) ctx_->release();
    staging_.release();
  }

 private:
  /// One device pass: upload, hash kernel, download. Idempotent.
  Status hash_pass(Batch& batch, std::uint8_t* digests) {
    telemetry::SpanRecorder* tracer = telemetry::tracer();
    const std::size_t nblocks = batch.blocks.size();
    auto data_buf = ctx_->scratch(0, batch.data.size());
    if (!data_buf.ok()) return data_buf.status();
    auto digest_buf = ctx_->scratch(1, nblocks * 20);
    if (!digest_buf.ok()) return digest_buf.status();
    Status s;
    {
      telemetry::ScopedSpan span(tracer, "dedup.sha1.h2d");
      s = cuda_status(
          cudax::cudaMemcpyAsync(data_buf.value(), batch.data.data(),
                                 batch.data.size(),
                                 cudax::cudaMemcpyKind::cudaMemcpyHostToDevice,
                                 ctx_->stream()),
          "h2d failed");
    }
    if (!s.ok()) return s;

    auto* dev_data = static_cast<const std::uint8_t*>(data_buf.value());
    auto* dev_digests = static_cast<std::uint8_t*>(digest_buf.value());
    const Batch* batch_ptr = &batch;
    {
      telemetry::ScopedSpan span(tracer, "dedup.sha1.kernel");
      s = cuda_status(
          cudax::launch_kernel(
              cudax::Dim3{static_cast<std::uint32_t>((nblocks + 63) / 64), 1,
                          1},
              cudax::Dim3{64, 1, 1}, ctx_->stream(),
              [batch_ptr, dev_data, dev_digests,
               nblocks](const cudax::ThreadCtx& tc) -> std::uint64_t {
                std::uint64_t b = tc.global_x();
                if (b >= nblocks) return 1;
                const BlockInfo& block = batch_ptr->blocks[b];
                auto digest = kernels::Sha1::hash(std::span<const std::uint8_t>(
                    dev_data + block.start, block.len));
                std::copy(digest.begin(), digest.end(), dev_digests + b * 20);
                // Lane cost: SHA-1 rounds of this block (divergence across
                // the warp comes from variable rabin block sizes).
                return kernels::Sha1::compression_rounds(block.len) * 100;
              }),
          "hash kernel failed");
    }
    if (!s.ok()) return s;
    {
      telemetry::ScopedSpan span(tracer, "dedup.sha1.d2h");
      s = cuda_status(
          cudax::cudaMemcpyAsync(digests, dev_digests, nblocks * 20,
                                 cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost,
                                 ctx_->stream()),
          "d2h failed");
    }
    if (!s.ok()) return s;
    telemetry::ScopedSpan span(tracer, "dedup.sha1.sync");
    return cuda_status(cudax::cudaStreamSynchronize(ctx_->stream()),
                       "stream synchronize failed");
  }

  gpusim::Machine* machine_;
  RetryStats* stats_;
  RetryPolicy policy_;
  sched::DeviceLoadTracker* tracker_ = nullptr;
  std::unique_ptr<CudaStageContext> ctx_;
  cudax::PinnedPool::Handle staging_;
  std::vector<std::uint8_t> fallback_;
};

/// FindMatch + compress stage on the simulated GPU (paper stage 4,
/// Listing 3): one thread per batch position, matches copied back, encode
/// walk on the CPU.
class CudaCompressWorker final : public flow::Node {
 public:
  CudaCompressWorker(gpusim::Machine* machine, const DedupConfig& config,
                     RetryStats* stats, RetryPolicy policy,
                     sched::DeviceLoadTracker* tracker = nullptr)
      : machine_(machine), config_(config), stats_(stats), policy_(policy),
        tracker_(tracker) {}

  void on_init(int replica_id) override {
    ctx_ = std::make_unique<CudaStageContext>(machine_, replica_id, stats_,
                                              policy_, tracker_);
  }

  flow::SvcResult svc(flow::Item in) override {
    Batch batch = in.take<Batch>();
    const std::size_t n = batch.data.size();
    if (n == 0) {
      return flow::SvcResult::Out(flow::Item::of<Batch>(std::move(batch)));
    }
    Status s = ctx_->run("dedup.lzss", [&] { return match_pass(batch); });
    if (s.ok()) {
      compress_blocks_from_matches(batch, config_);
    } else {
      // Bit-exact CPU stage (direct LZSS, no precomputed match table).
      batch.matches.clear();
      compress_blocks_cpu(batch, config_);
      if (stats_ != nullptr) {
        stats_->cpu_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    batch.matches.clear();
    return flow::SvcResult::Out(flow::Item::of<Batch>(std::move(batch)));
  }

  void on_end() override {
    if (ctx_) ctx_->release();
    staging_.release();
  }

 private:
  /// One device pass: upload, FindMatch kernel, download match table.
  /// Idempotent (matches are rewritten wholesale).
  Status match_pass(Batch& batch) {
    telemetry::SpanRecorder* tracer = telemetry::tracer();
    const std::size_t n = batch.data.size();
    auto data_buf = ctx_->scratch(0, n);
    if (!data_buf.ok()) return data_buf.status();
    auto match_buf = ctx_->scratch(1, n * sizeof(kernels::LzssMatch));
    if (!match_buf.ok()) return match_buf.status();
    // "This stage reuses data already on GPU" in the paper; workers here
    // are distinct replicas, so the transfer is repeated — the modeled
    // runners account for the reuse optimization explicitly.
    Status s;
    {
      telemetry::ScopedSpan span(tracer, "dedup.lzss.h2d");
      s = cuda_status(
          cudax::cudaMemcpyAsync(data_buf.value(), batch.data.data(), n,
                                 cudax::cudaMemcpyKind::cudaMemcpyHostToDevice,
                                 ctx_->stream()),
          "h2d failed");
    }
    if (!s.ok()) return s;
    auto* dev_data = static_cast<const std::uint8_t*>(data_buf.value());
    auto* dev_matches = static_cast<kernels::LzssMatch*>(match_buf.value());
    const Batch* batch_ptr = &batch;
    const kernels::LzssParams lzss = config_.lzss;
    {
      telemetry::ScopedSpan span(tracer, "dedup.lzss.kernel");
      s = cuda_status(
          cudax::launch_kernel(
              cudax::Dim3{static_cast<std::uint32_t>((n + 255) / 256), 1, 1},
              cudax::Dim3{256, 1, 1}, ctx_->stream(),
              [batch_ptr, dev_data, dev_matches, n,
               lzss](const cudax::ThreadCtx& tc) -> std::uint64_t {
                std::uint64_t pos = tc.global_x();
                if (pos >= n) return 1;
                // Listing 3: locate the block containing `pos` from
                // startPos.
                const auto& starts = batch_ptr->start_pos;
                std::size_t lo = 0, hi = starts.size();
                while (lo + 1 < hi) {
                  std::size_t mid = (lo + hi) / 2;
                  if (starts[mid] <= pos) lo = mid;
                  else hi = mid;
                }
                std::size_t bstart = starts[lo];
                std::size_t bend = lo + 1 < starts.size() ? starts[lo + 1] : n;
                dev_matches[pos] = kernels::lzss_longest_match(
                    std::span<const std::uint8_t>(dev_data, n), bstart, bend,
                    pos, lzss);
                return kernels::lzss_match_cost(bstart, pos, lzss) * 2;
              }),
          "FindMatch kernel failed");
    }
    if (!s.ok()) return s;
    // Match table comes back through a pinned staging slab when available
    // (pool hit in the steady state); the matches vector keeps its
    // capacity across recycled batches either way.
    const std::size_t bytes = n * sizeof(kernels::LzssMatch);
    if (staging_.capacity() < bytes) {
      staging_ = cudax::PinnedPool::Default().acquire(bytes);
    }
    batch.matches.resize(n);
    void* dst = staging_.valid() ? static_cast<void*>(staging_.data())
                                 : static_cast<void*>(batch.matches.data());
    {
      telemetry::ScopedSpan span(tracer, "dedup.lzss.d2h");
      s = cuda_status(
          cudax::cudaMemcpyAsync(dst, dev_matches, bytes,
                                 cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost,
                                 ctx_->stream()),
          "d2h failed");
    }
    if (!s.ok()) return s;
    {
      telemetry::ScopedSpan span(tracer, "dedup.lzss.sync");
      s = cuda_status(cudax::cudaStreamSynchronize(ctx_->stream()),
                      "stream synchronize failed");
    }
    if (!s.ok()) return s;
    if (staging_.valid()) {
      std::memcpy(batch.matches.data(), staging_.data(), bytes);
    }
    return OkStatus();
  }

  gpusim::Machine* machine_;
  DedupConfig config_;
  RetryStats* stats_;
  RetryPolicy policy_;
  sched::DeviceLoadTracker* tracker_ = nullptr;
  std::unique_ptr<CudaStageContext> ctx_;
  cudax::PinnedPool::Handle staging_;
};

}  // namespace

Result<std::vector<std::uint8_t>> archive_spar_cuda(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    int replicas, gpusim::Machine& machine, RetryStats* stats,
    const RetryPolicy& policy, sched::DeviceLoadTracker* tracker,
    flow::FailureReport* failures) {
  if (machine.device_count() == 0) {
    return InvalidArgument("machine has no devices");
  }
  ArchiveWriter writer(config);
  writer.reserve(archive_reserve_bytes(input.size()));
  DupCache cache;
  BatchPool pool;
  Status append_status;

  spar::ToStream region("dedup-cuda");
  region.source<Batch>(BatchSource(input, config, &pool));
  region.stage_nodes(spar::Replicate(replicas),
                     [&machine, stats, policy, tracker] {
    return std::make_unique<CudaHashWorker>(&machine, stats, policy, tracker);
  });
  region.stage<Batch, Batch>([&cache](Batch batch) {
    cache.check(batch);
    return batch;
  });
  region.stage_nodes(spar::Replicate(replicas),
                     [&machine, config, stats, policy, tracker] {
    return std::make_unique<CudaCompressWorker>(&machine, config, stats,
                                                policy, tracker);
  });
  region.last_stage<Batch>([&writer, &append_status, &pool](Batch batch) {
    Status s = writer.append(batch);
    if (!s.ok() && append_status.ok()) append_status = s;
    pool.release(std::move(batch));
  });
  Status run_status = region.run();
  if (failures != nullptr) *failures = region.failure_report();
  HS_RETURN_IF_ERROR(run_status);
  if (!append_status.ok()) return append_status;
  return writer.finish(input_digest(input));
}

Result<std::vector<std::uint8_t>> archive_opencl_single_thread(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    gpusim::Machine& machine, bool batched_kernel) {
  auto platforms = oclx::Platform::get(&machine);
  if (platforms.empty()) return NotFound("no OpenCL platform");
  auto devices = platforms[0].devices();
  auto ctx = oclx::Context::create(devices);
  if (!ctx.ok()) return ctx.status();
  auto queue = oclx::CommandQueue::create(ctx.value(), devices[0]);
  if (!queue.ok()) return queue.status();

  ArchiveWriter writer(config);
  writer.reserve(archive_reserve_bytes(input.size()));
  DupCache cache;
  BatchPool pool;
  BatchSource source(input, config, &pool);
  const kernels::LzssParams lzss = config.lzss;
  telemetry::SpanRecorder* tracer = telemetry::tracer();

  while (auto maybe_batch = source()) {
    Batch batch = std::move(*maybe_batch);
    const std::size_t n = batch.data.size();
    auto data_buf = oclx::Buffer::create(ctx.value(), devices[0], n);
    if (!data_buf.ok()) return data_buf.status();
    {
      telemetry::ScopedSpan span(tracer, "dedup.ocl.h2d");
      if (queue.value().enqueue_write(data_buf.value(), 0, batch.data.data(),
                                      n, /*blocking=*/false, nullptr) !=
          oclx::ClStatus::kSuccess) {
        return Internal("write failed: " + queue.value().last_error());
      }
    }

    // Stage 2: SHA-1 on device, one work-item per block. Kernel results
    // are written through mapped host pointers here; the modeled runners
    // (dedup/modeled.hpp) account for the device->host result transfers
    // explicitly.
    auto* dev_data = static_cast<const std::uint8_t*>(data_buf.value().data());
    const Batch* batch_ptr = &batch;
    const std::size_t nblocks = batch.blocks.size();
    std::vector<kernels::Sha1Digest> digests(nblocks);
    auto* digests_ptr = digests.data();
    oclx::Kernel sha_kernel = oclx::Kernel::create(
        "sha1_blocks",
        [batch_ptr, dev_data, digests_ptr,
         nblocks](const oclx::ThreadCtx& tc) -> std::uint64_t {
          std::uint64_t b = tc.global_x();
          if (b >= nblocks) return 1;
          const BlockInfo& block = batch_ptr->blocks[b];
          digests_ptr[b] = kernels::Sha1::hash(std::span<const std::uint8_t>(
              dev_data + block.start, block.len));
          return kernels::Sha1::compression_rounds(block.len) * 100;
        });
    {
      telemetry::ScopedSpan span(tracer, "dedup.ocl.sha1.kernel");
      if (queue.value().enqueue_ndrange(
              sha_kernel,
              oclx::Dim3{static_cast<std::uint32_t>((nblocks + 63) / 64 * 64),
                         1, 1},
              oclx::Dim3{64, 1, 1}, nullptr) != oclx::ClStatus::kSuccess) {
        return Internal("sha kernel failed: " + queue.value().last_error());
      }
      if (!queue.value().finish().ok()) return Internal("finish failed");
    }
    for (std::size_t b = 0; b < nblocks; ++b) {
      batch.blocks[b].digest = digests[b];
    }

    // Stage 3: serial duplicate check.
    cache.check(batch);

    // Stage 4: FindMatch on device (one kernel per batch, or the
    // pre-optimization one kernel per block), then CPU encode walk.
    batch.matches.assign(n, kernels::LzssMatch{});
    auto* matches_ptr = batch.matches.data();
    auto run_find = [&](std::size_t bstart, std::size_t bend) -> Status {
      std::size_t span_len = bend - bstart;
      oclx::Kernel find_kernel = oclx::Kernel::create(
          "find_match",
          [batch_ptr, dev_data, matches_ptr, n, lzss, bstart,
           bend](const oclx::ThreadCtx& tc) -> std::uint64_t {
            std::uint64_t pos = bstart + tc.global_x();
            if (pos >= bend) return 1;
            const auto& starts = batch_ptr->start_pos;
            std::size_t lo = 0, hi = starts.size();
            while (lo + 1 < hi) {
              std::size_t mid = (lo + hi) / 2;
              if (starts[mid] <= pos) lo = mid;
              else hi = mid;
            }
            std::size_t bs = starts[lo];
            std::size_t be = lo + 1 < starts.size() ? starts[lo + 1] : n;
            matches_ptr[pos] = kernels::lzss_longest_match(
                std::span<const std::uint8_t>(dev_data, n), bs, be, pos,
                lzss);
            return kernels::lzss_match_cost(bs, pos, lzss) * 2;
          });
      if (queue.value().enqueue_ndrange(
              find_kernel,
              oclx::Dim3{
                  static_cast<std::uint32_t>((span_len + 255) / 256 * 256), 1,
                  1},
              oclx::Dim3{256, 1, 1}, nullptr) != oclx::ClStatus::kSuccess) {
        return Internal("find kernel failed: " + queue.value().last_error());
      }
      return OkStatus();
    };
    if (n > 0) {
      telemetry::ScopedSpan span(tracer, "dedup.ocl.lzss.kernel");
      if (batched_kernel) {
        if (Status s = run_find(0, n); !s.ok()) return s;
      } else {
        for (std::size_t k = 0; k < batch.start_pos.size(); ++k) {
          std::size_t bs = batch.start_pos[k];
          std::size_t be =
              k + 1 < batch.start_pos.size() ? batch.start_pos[k + 1] : n;
          if (Status s = run_find(bs, be); !s.ok()) return s;
        }
      }
      if (!queue.value().finish().ok()) return Internal("finish failed");
    }
    compress_blocks_from_matches(batch, config);
    batch.matches.clear();

    // Stage 5: write.
    if (Status s = writer.append(batch); !s.ok()) return s;
    pool.release(std::move(batch));
  }
  return writer.finish(input_digest(input));
}

}  // namespace hs::dedup
