// Persistent sharded content store — the grown-up form of stage 3's
// digest table (DESIGN.md §4j).
//
// Two independent roles live here, matching how the dedup pipelines use
// it:
//
//  * Archive-local duplicate check (the historical DupCache): check()
//    assigns unique-block ids 0,1,2,... in stream order, serially — the
//    container format requires a duplicate record to reference an id the
//    decoder has already materialized, so this part is inherently serial
//    and *never* consults disk state. Archives are therefore byte-stable
//    across restarts whether or not a store directory is attached.
//
//  * Cross-run content index: record()/lookup() track every digest ever
//    seen in N = 16 lock-striped shards, callable concurrently from the
//    unordered hash farm (each block's digest is recorded by whichever
//    worker hashed it, in completion order). spill() drains
//    not-yet-persisted entries to an on-disk segment; open() replays all
//    segments to rebuild the shard maps, so a restarted process knows
//    exactly which content it has archived before (the store_hits
//    counters the persistence CI leg diffs).
//
// Segment format (little-endian, container.hpp idiom):
//   header : magic "HSDUPSG1" | u32 version | u32 reserved |
//            u64 entry_count
//   entry  : u8[20] SHA-1 digest | u64 store_id       (28 bytes)
//   trailer: u8[20] SHA-1 over header+entries (integrity)
//
// Recovery rules (exercised by dup_store_test's corruption fuzz):
//   * well-formed segment (size and trailer match) -> load every entry;
//   * short file (truncation, e.g. crash mid-spill) -> load the longest
//     whole-entry prefix, counted in Stats::truncated_segments;
//   * full-length file whose trailer mismatches (bit rot) -> quarantine:
//     load nothing from it, counted in Stats::quarantined_segments.
// Spills write to a ".tmp" sibling and rename into place, so a crash
// never leaves a half-written file under a live segment name; on any
// write error the drained entries are re-queued for the next spill.
//
// Store ids are assignment-ordered (atomic counter) and only meaningful
// within one store directory; hit counters are runtime telemetry and are
// not persisted.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "dedup/types.hpp"
#include "kernels/sha1.hpp"

namespace hs::dedup {

/// Hash of a SHA-1 digest for the duplicate table: the digest is already
/// uniformly distributed, so folding its words is enough. Keying the table
/// by the 20-byte array directly (instead of a std::string, which exceeds
/// the small-string optimization) keeps the per-block lookup heap-free.
struct DigestHash {
  std::size_t operator()(const kernels::Sha1Digest& d) const {
    std::uint64_t a, b;
    std::uint32_t c;
    std::memcpy(&a, d.data(), 8);
    std::memcpy(&b, d.data() + 8, 8);
    std::memcpy(&c, d.data() + 16, 4);
    std::uint64_t h = a;
    h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= c + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

class DupStore {
 public:
  static constexpr std::uint32_t kShards = 16;
  static constexpr char kSegmentMagic[9] = "HSDUPSG1";
  static constexpr std::uint32_t kSegmentVersion = 1;
  static constexpr std::size_t kEntryBytes = 20 + 8;
  static constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
  static constexpr std::size_t kTrailerBytes = 20;

  struct Stats {
    std::uint64_t entries = 0;       ///< digests resident across shards
    std::uint64_t store_hits = 0;    ///< record() found the digest
    std::uint64_t store_misses = 0;  ///< record() inserted the digest
    std::uint64_t segments_loaded = 0;
    std::uint64_t entries_recovered = 0;  ///< entries replayed by open()
    std::uint64_t truncated_segments = 0;
    std::uint64_t quarantined_segments = 0;
    std::uint64_t spills = 0;          ///< segments written by spill()
    std::uint64_t pending_entries = 0; ///< recorded but not yet spilled
  };

  DupStore();
  DupStore(const DupStore&) = delete;
  DupStore& operator=(const DupStore&) = delete;

  /// Attaches a store directory (created if absent) and replays every
  /// segment in it per the recovery rules above. Call once, before any
  /// record(); entries recovered from disk do not count as this run's
  /// hits or misses.
  Status open(const std::string& dir);

  /// Registers `digest`, returning its stable store id. Sets *was_present
  /// to true when the digest was already known (this run or recovered).
  /// Thread-safe and lock-striped: concurrent callers on different shards
  /// never contend.
  std::uint64_t record(const kernels::Sha1Digest& digest, bool* was_present);

  /// True (and *id_out filled) when the digest is known. Thread-safe.
  bool lookup(const kernels::Sha1Digest& digest, std::uint64_t* id_out) const;

  /// Writes all entries recorded since the last spill into a new segment
  /// file. No-op (OK) when nothing is pending or no directory is
  /// attached; on failure the drained entries are re-queued and the error
  /// returned. Thread-safe against concurrent record().
  Status spill();

  [[nodiscard]] Stats stats() const;

  // ---- archive-local stage 3 (the historical DupCache interface) ----

  /// Stage 3 body: marks duplicates and assigns global ids in order.
  /// Archive-local: ids restart at 0 per DupStore instance and are never
  /// influenced by recovered disk state (the container format's
  /// stream-order id contract).
  void check(Batch& batch);

  /// Number of archive-local unique blocks registered by check().
  [[nodiscard]] std::uint64_t unique_count() const;

 private:
  struct Entry {
    std::uint64_t store_id = 0;
    std::uint64_t hits = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<kernels::Sha1Digest, Entry, DigestHash> map;
    /// Entries recorded since the last successful spill.
    std::vector<std::pair<kernels::Sha1Digest, std::uint64_t>> pending;
  };

  static std::uint32_t shard_of(const kernels::Sha1Digest& d) {
    return d[0] & (kShards - 1);
  }

  /// Loads one segment file per the recovery rules; returns entries.
  void load_segment(const std::string& path);

  // Cross-run store state.
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> next_store_id_{0};
  std::atomic<std::uint64_t> store_hits_{0};
  std::atomic<std::uint64_t> store_misses_{0};
  std::string dir_;  ///< empty = in-memory only
  std::uint64_t next_segment_ = 0;
  std::uint64_t segments_loaded_ = 0;
  std::uint64_t entries_recovered_ = 0;
  std::uint64_t truncated_segments_ = 0;
  std::uint64_t quarantined_segments_ = 0;
  std::uint64_t spills_ = 0;
  mutable std::mutex spill_mu_;  ///< serializes spill()/open bookkeeping

  // Archive-local duplicate-check state (DupCache).
  mutable std::mutex check_mu_;
  std::unordered_map<kernels::Sha1Digest, std::uint64_t, DigestHash> ids_;
  std::uint64_t next_id_ = 0;
};

}  // namespace hs::dedup
