#include "dedup/dup_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace hs::dedup {
namespace fs = std::filesystem;

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Segment file names are segment-<%06llu>.dup so a lexicographic directory
/// scan is also index order.
std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "segment-%06llu.dup",
                static_cast<unsigned long long>(index));
  return buf;
}

bool parse_segment_index(const std::string& name, std::uint64_t& out) {
  unsigned long long v = 0;
  if (std::sscanf(name.c_str(), "segment-%6llu.dup", &v) != 1) return false;
  out = v;
  return true;
}

}  // namespace

DupStore::DupStore() : shards_(std::make_unique<Shard[]>(kShards)) {}

std::uint64_t DupStore::record(const kernels::Sha1Digest& digest,
                               bool* was_present) {
  Shard& shard = shards_[shard_of(digest)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(digest);
  if (inserted) {
    it->second.store_id = next_store_id_.fetch_add(1, std::memory_order_relaxed);
    shard.pending.emplace_back(digest, it->second.store_id);
    store_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++it->second.hits;
    store_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  if (was_present != nullptr) *was_present = !inserted;
  return it->second.store_id;
}

bool DupStore::lookup(const kernels::Sha1Digest& digest,
                      std::uint64_t* id_out) const {
  const Shard& shard = shards_[shard_of(digest)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(digest);
  if (it == shard.map.end()) return false;
  if (id_out != nullptr) *id_out = it->second.store_id;
  return true;
}

void DupStore::load_segment(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // Unreadable counts as quarantined — we know it exists (the directory
    // scan found it) but can trust nothing in it.
    ++quarantined_segments_;
    return;
  }
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(fsize > 0 ? static_cast<std::size_t>(fsize)
                                            : 0);
  const std::size_t got =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(got);

  ++segments_loaded_;
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kSegmentMagic, 8) != 0) {
    ++quarantined_segments_;
    return;
  }
  const std::uint64_t declared = get_u64(bytes.data() + 16);
  const std::size_t full_size =
      kHeaderBytes + declared * kEntryBytes + kTrailerBytes;

  std::uint64_t usable = 0;
  if (bytes.size() >= full_size) {
    // Full-length file: the trailer must validate or nothing is trusted
    // (a flipped bit could be in any entry).
    kernels::Sha1Digest want;
    std::memcpy(want.data(), bytes.data() + full_size - kTrailerBytes, 20);
    const kernels::Sha1Digest have = kernels::Sha1::hash(
        std::span(bytes.data(), full_size - kTrailerBytes));
    if (have != want) {
      ++quarantined_segments_;
      return;
    }
    usable = declared;
  } else {
    // Truncated (crash mid-write of a pre-rename tmp that leaked, or media
    // loss): recover the longest whole-entry prefix.
    usable = (bytes.size() - kHeaderBytes) / kEntryBytes;
    if (usable > declared) usable = declared;
    ++truncated_segments_;
  }

  for (std::uint64_t i = 0; i < usable; ++i) {
    const std::uint8_t* p = bytes.data() + kHeaderBytes + i * kEntryBytes;
    kernels::Sha1Digest digest;
    std::memcpy(digest.data(), p, 20);
    const std::uint64_t id = get_u64(p + 20);
    Shard& shard = shards_[shard_of(digest)];
    auto [it, inserted] = shard.map.try_emplace(digest);
    if (inserted) {
      it->second.store_id = id;
      ++entries_recovered_;
    }
    // Duplicate digests across segments keep the first (lowest-segment) id.
  }
}

Status DupStore::open(const std::string& dir) {
  std::lock_guard<std::mutex> lock(spill_mu_);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Internal("dup store: cannot create directory " + dir + ": " +
                    ec.message());
  }
  dir_ = dir;

  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::uint64_t index = 0;
    const std::string name = entry.path().filename().string();
    if (!parse_segment_index(name, index)) continue;
    segments.emplace_back(index, entry.path().string());
  }
  if (ec) {
    return Internal("dup store: cannot scan directory " + dir + ": " +
                    ec.message());
  }
  std::sort(segments.begin(), segments.end());
  std::uint64_t max_id = 0;
  for (const auto& [index, path] : segments) {
    load_segment(path);
    next_segment_ = std::max(next_segment_, index + 1);
  }
  // Resume id assignment above every recovered id so restarted runs never
  // collide with persisted ones.
  for (std::uint32_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> shard_lock(shards_[s].mu);
    for (const auto& [digest, entry] : shards_[s].map) {
      max_id = std::max(max_id, entry.store_id + 1);
    }
  }
  std::uint64_t cur = next_store_id_.load(std::memory_order_relaxed);
  if (max_id > cur) next_store_id_.store(max_id, std::memory_order_relaxed);
  return OkStatus();
}

Status DupStore::spill() {
  std::lock_guard<std::mutex> lock(spill_mu_);
  if (dir_.empty()) return OkStatus();

  // Drain every shard's pending list under its own lock; record() keeps
  // running on other shards while we do.
  std::vector<std::pair<kernels::Sha1Digest, std::uint64_t>> drained;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> shard_lock(shards_[s].mu);
    auto& pending = shards_[s].pending;
    drained.insert(drained.end(), pending.begin(), pending.end());
    pending.clear();
  }
  if (drained.empty()) return OkStatus();

  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes + drained.size() * kEntryBytes + kTrailerBytes);
  bytes.insert(bytes.end(), kSegmentMagic, kSegmentMagic + 8);
  put_u32(bytes, kSegmentVersion);
  put_u32(bytes, 0);  // reserved
  put_u64(bytes, drained.size());
  for (const auto& [digest, id] : drained) {
    bytes.insert(bytes.end(), digest.begin(), digest.end());
    put_u64(bytes, id);
  }
  const kernels::Sha1Digest trailer =
      kernels::Sha1::hash(std::span(bytes.data(), bytes.size()));
  bytes.insert(bytes.end(), trailer.begin(), trailer.end());

  const std::uint64_t index = next_segment_;
  const std::string final_path =
      (fs::path(dir_) / segment_name(index)).string();
  const std::string tmp_path = final_path + ".tmp";

  auto requeue = [&] {
    for (std::uint32_t s = 0; s < kShards; ++s) {
      std::lock_guard<std::mutex> shard_lock(shards_[s].mu);
      for (const auto& e : drained) {
        if (shard_of(e.first) == s) shards_[s].pending.push_back(e);
      }
    }
  };

  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    requeue();
    return Internal("dup store: cannot open " + tmp_path);
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmp_path.c_str());
    requeue();
    return Internal("dup store: short write to " + tmp_path);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    requeue();
    return Internal("dup store: cannot rename " + tmp_path + ": " +
                    ec.message());
  }
  next_segment_ = index + 1;
  ++spills_;
  return OkStatus();
}

DupStore::Stats DupStore::stats() const {
  Stats st;
  st.store_hits = store_hits_.load(std::memory_order_relaxed);
  st.store_misses = store_misses_.load(std::memory_order_relaxed);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> shard_lock(shards_[s].mu);
    st.entries += shards_[s].map.size();
    st.pending_entries += shards_[s].pending.size();
  }
  std::lock_guard<std::mutex> lock(spill_mu_);
  st.segments_loaded = segments_loaded_;
  st.entries_recovered = entries_recovered_;
  st.truncated_segments = truncated_segments_;
  st.quarantined_segments = quarantined_segments_;
  st.spills = spills_;
  return st;
}

void DupStore::check(Batch& batch) {
  std::lock_guard<std::mutex> lock(check_mu_);
  for (BlockInfo& block : batch.blocks) {
    auto [it, inserted] = ids_.try_emplace(block.digest, next_id_);
    if (inserted) {
      block.duplicate = false;
      block.global_id = next_id_++;
    } else {
      block.duplicate = true;
      block.global_id = it->second;
    }
  }
}

std::uint64_t DupStore::unique_count() const {
  std::lock_guard<std::mutex> lock(check_mu_);
  return next_id_;
}

}  // namespace hs::dedup
