// Modeled Dedup variants — the engine behind Fig. 5.
//
// A DedupTrace runs the real stages once per dataset (rabin fragmentation,
// SHA-1, duplicate decisions, LZSS match costs, output sizes) and records
// the per-batch work. Each Fig. 5 variant then replays its own schedule —
// who enqueues what, on which stream, with which synchronization — charging
// trace-derived durations to modeled host workers and simulated devices.
// Throughput = input bytes / modeled makespan, the metric Fig. 5 plots.
//
// The CUDA-vs-OpenCL asymmetry the paper found is encoded exactly as
// diagnosed in §V-B: Dedup's realloc'd buffers cannot be page-locked, so
// the CUDA variants' async copies run at pageable bandwidth and block the
// issuing host thread (cudaMemcpyAsync degrades to synchronous), which is
// why 2x memory spaces do not help CUDA; the OpenCL variants copy
// asynchronously but pay higher per-enqueue overhead.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dedup/stages.hpp"
#include "gpusim/device.hpp"
#include "perfmodel/host_model.hpp"
#include "sched/sched.hpp"

namespace hs::dedup {

/// Per-batch work summary extracted from a real run of the stages.
struct BatchCosts {
  std::uint32_t data_len = 0;
  std::vector<std::uint32_t> block_lens;  ///< GPU hash-kernel lane costs
  std::vector<std::uint32_t> start_pos;   ///< FindMatch block bounds
  std::uint64_t sha1_rounds = 0;
  std::uint64_t block_count = 0;
  std::uint64_t match_cost_units = 0;         ///< whole batch (GPU kernel)
  std::uint64_t unique_match_cost_units = 0;  ///< unique blocks (CPU path)
  std::uint64_t unique_bytes = 0;
  std::uint64_t output_bytes = 0;
  /// Leading digest byte per block, in block order. Content-hash routing key
  /// for the cluster-sharded duplicate check (owner node = key % nodes);
  /// unused by the single-host variants.
  std::vector<std::uint8_t> shard_key;
};

struct DedupTrace {
  std::vector<BatchCosts> batches;
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t unique_blocks = 0;
  std::uint64_t duplicate_blocks = 0;
};

/// Runs fragmentation, hashing, duplicate checking and match costing once;
/// does NOT produce an archive (use dedup/pipelines.hpp for that).
/// `variable_batches` selects PARSEC's original content-defined batch
/// boundaries instead of the paper's fixed-size refactor (DESIGN.md §4.3).
DedupTrace build_trace(std::span<const std::uint8_t> input,
                       const DedupConfig& config,
                       bool variable_batches = false);

enum class Fig5Backend {
  kSequential,
  kSparCpu,      ///< 19-replica CPU farm (hash + compress on workers)
  kCudaSingle,   ///< single host thread driving one GPU via CUDA semantics
  kOclSingle,    ///< single host thread driving one GPU via OpenCL semantics
  kSparCuda,     ///< Fig. 3 graph, CUDA semantics, multi-GPU capable
  kSparOcl,      ///< Fig. 3 graph, OpenCL semantics, multi-GPU capable
};

std::string_view fig5_backend_name(Fig5Backend b);

struct Fig5Config {
  perfmodel::HostProfile host = perfmodel::HostProfile::I9_7900X();
  gpusim::DeviceSpec device_spec = gpusim::DeviceSpec::TitanXP();
  DedupConfig dedup;
  int devices = 1;
  int replicas = 19;
  /// Paper's central optimization: one FindMatch kernel per batch (true)
  /// vs one kernel per block (false, the "very poor" pre-fix version).
  bool batched_kernel = true;
  /// Memory spaces (streams + buffers) per driver/worker: 1 or 2.
  int mem_spaces = 1;
  /// Device dispatch for the SPar+GPU variants. kStatic keeps the paper's
  /// per-replica round-robin device binding; kAdaptive sends each batch to
  /// the memory space whose device frees up earliest (least-loaded across
  /// every device — DESIGN.md §4h). Single-thread and CPU variants ignore
  /// this; static output is unchanged by the flag.
  sched::SchedMode sched = sched::SchedMode::kStatic;
};

struct Fig5Result {
  std::string label;
  double modeled_seconds = 0;
  double throughput_mb_s = 0;  ///< input MB (decimal) per second
  std::uint64_t kernel_launches = 0;
};

Fig5Result run_fig5(const DedupTrace& trace, const Fig5Config& config,
                    Fig5Backend backend);

}  // namespace hs::dedup
