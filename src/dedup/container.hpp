// Archive container for deduplicated + LZSS-compressed streams.
//
// Layout (little-endian):
//   header : magic "HSDEDUP1" | u32 version | u32 reserved |
//            u64 original_size | u64 batch_count |
//            u32 lzss_window | u32 lzss_min_match
//   batch  : u64 index | u32 original_len | u32 block_count | blocks...
//   block  : u8 tag (0 = unique, 1 = duplicate)
//            unique    : u32 raw_len | u32 comp_len | comp_len bytes
//            duplicate : u64 global_id (the first occurrence's id)
//   trailer: u8[20] SHA-1 of the original input (integrity check)
//
// Unique blocks are numbered 0,1,2,... in stream order, so a duplicate
// always references an id the decoder has already materialized — this is
// why the duplicate-check stage is serial-in-order in every pipeline
// variant (DESIGN.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "dedup/types.hpp"

namespace hs::dedup {

/// Incrementally assembles an archive. Batches must be appended in index
/// order (enforced).
class ArchiveWriter {
 public:
  explicit ArchiveWriter(const DedupConfig& config);

  /// Appends a fully-processed batch (blocks hashed, dedup-checked, unique
  /// blocks compressed).
  Status append(const Batch& batch);

  /// Finalizes: patches the header and appends the input digest. The
  /// writer must not be reused afterwards.
  std::vector<std::uint8_t> finish(const kernels::Sha1Digest& input_digest);

  /// Pre-sizes the output buffer (callers that know the input size avoid
  /// repeated growth reallocations in the serial writer stage).
  void reserve(std::size_t bytes) { out_.reserve(bytes); }

  [[nodiscard]] std::uint64_t batches_written() const { return batch_count_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return out_.size(); }

 private:
  DedupConfig config_;
  std::vector<std::uint8_t> out_;
  std::uint64_t batch_count_ = 0;
  std::uint64_t original_size_ = 0;
  std::uint64_t next_batch_index_ = 0;
  bool finished_ = false;
};

struct ArchiveInfo {
  std::uint64_t original_size = 0;
  std::uint64_t batch_count = 0;
  std::uint64_t unique_blocks = 0;
  std::uint64_t duplicate_blocks = 0;
  std::uint64_t entropy_blocks = 0;  ///< unique blocks with entropy coding
  std::uint64_t compressed_payload_bytes = 0;
};

/// Decompresses a complete archive back to the original bytes, verifying
/// structure and the trailing SHA-1. DATA_LOSS on any corruption.
Result<std::vector<std::uint8_t>> extract(
    std::span<const std::uint8_t> archive);

/// Parses structure only (no payload decompression of duplicates needed):
/// used by tests and the CLI's `info` mode.
Result<ArchiveInfo> inspect(std::span<const std::uint8_t> archive);

/// Parallel extractor (extension): block decompression fans out to a
/// `replicas`-worker farm (ordered) while parsing and assembly stay
/// serial — the inverse of the compression pipeline. Output is identical
/// to extract(); the same integrity checks apply.
Result<std::vector<std::uint8_t>> extract_parallel(
    std::span<const std::uint8_t> archive, int replicas);

}  // namespace hs::dedup
