// Core data types of the Dedup application (paper §IV-B).
//
// The paper's GPU refactoring fixes the batch size at 1 MB and lets rabin
// produce variable-size *blocks* inside each batch (Fig. 2): `start_pos`
// is the index vector every stage shares. A Batch flows through the
// 5-stage graph of Fig. 3: fragment -> SHA-1 -> duplicate check ->
// compress -> reorder/write.
//
// The datapath is zero-copy: a batch owns one pooled contiguous buffer and
// every block is a span into it (fragment/hash/check never copy block
// bytes); only unique-block compressed payloads own memory, drawn from the
// same BufferPool and recycled when the writer retires the batch.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/buffer_pool.hpp"
#include "kernels/lzss.hpp"
#include "kernels/rabin.hpp"
#include "kernels/sha1.hpp"

namespace hs::dedup {

/// Block payload codec. kLzss is the paper's choice; kLzssHuffman layers a
/// canonical-Huffman entropy stage over the LZSS output (restoring the
/// missing half of PARSEC's gzip/bzip2, as an extension).
enum class DedupCodec : std::uint8_t {
  kLzss = 0,
  kLzssHuffman = 1,
};

struct DedupConfig {
  /// Fixed batch size (the paper's 1 MB; benches scale it).
  std::uint32_t batch_size = 1024 * 1024;
  kernels::RabinParams rabin;
  kernels::LzssParams lzss;
  DedupCodec codec = DedupCodec::kLzss;

  DedupConfig() {
    // Defaults tuned for tractable functional runs: ~2-16 kB blocks and a
    // 256-byte LZSS window (the window is a knob; the paper's 4 kB window
    // only changes constants, not the shape — see DESIGN.md).
    rabin.window = 32;
    rabin.min_block = 1024;
    rabin.max_block = 65536;
    rabin.mask = 0xFFF;
    rabin.magic = 0x78;
    lzss.window_size = 256;
  }
};

/// Per-block bookkeeping inside a batch. `bytes` views the owning Batch's
/// pooled buffer (valid for the batch's lifetime; Batch moves keep it
/// valid because PooledBuffer moves are pointer-stable, and Batch copies
/// rebase it onto the copy's buffer).
struct BlockInfo {
  std::uint32_t start = 0;  ///< offset within the batch (from start_pos)
  std::uint32_t len = 0;
  std::span<const std::uint8_t> bytes{};  ///< view into Batch::data
  kernels::Sha1Digest digest{};
  bool duplicate = false;
  /// True when the persistent DupStore already knew this digest (from an
  /// earlier run or earlier in this one). Telemetry only — never consulted
  /// by the archive writer, so attaching a store cannot change the bytes.
  bool store_hit = false;
  /// kLzssHuffman mode: true when the entropy stage beat plain LZSS for
  /// this block (payload = u32 lzss_len | huffman(lzss)).
  bool entropy_coded = false;
  /// Global id: for unique blocks, the id this block defines; for
  /// duplicates, the id of the first occurrence.
  std::uint64_t global_id = 0;
  PooledBuffer compressed;  ///< unique blocks only (pooled slab)
};

/// One stream item: a fixed-size chunk of input plus its rabin block index
/// (Fig. 2) and per-stage results. Copyable (stream adapters copy items);
/// a copy deep-copies the pooled buffers and rebases the block spans.
struct Batch {
  std::uint64_t index = 0;
  PooledBuffer data;
  std::vector<std::uint32_t> start_pos;
  std::vector<BlockInfo> blocks;
  /// GPU path: FindMatch results for every batch position (Listing 3).
  std::vector<kernels::LzssMatch> matches;

  Batch() = default;
  Batch(Batch&&) noexcept = default;
  Batch& operator=(Batch&&) noexcept = default;

  Batch(const Batch& other)
      : index(other.index),
        data(other.data),
        start_pos(other.start_pos),
        blocks(other.blocks),
        matches(other.matches) {
    rebase_block_spans();
  }
  Batch& operator=(const Batch& other) {
    if (this != &other) {
      index = other.index;
      data = other.data;
      start_pos = other.start_pos;
      blocks = other.blocks;
      matches = other.matches;
      rebase_block_spans();
    }
    return *this;
  }

  /// Points every block's `bytes` span into this batch's own buffer.
  void rebase_block_spans() {
    for (BlockInfo& b : blocks) {
      b.bytes = std::span<const std::uint8_t>(data.data() + b.start, b.len);
    }
  }

  /// Empties the batch but keeps every capacity (data slab, vectors) so a
  /// recycled batch is refilled without heap traffic. Block compressed
  /// slabs return to the BufferPool via ~BlockInfo.
  void reset() {
    index = 0;
    data.clear();
    start_pos.clear();
    blocks.clear();
    matches.clear();
  }
};

/// Thread-safe recycler of retired batches: the writer stage releases each
/// batch after appending it and the source re-acquires, so a steady-state
/// pipeline reuses slabs and vector capacities instead of allocating per
/// item.
class BatchPool {
 public:
  explicit BatchPool(std::size_t max_cached = 64) : max_cached_(max_cached) {}

  [[nodiscard]] Batch acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return Batch{};
    Batch b = std::move(free_.back());
    free_.pop_back();
    return b;
  }

  void release(Batch&& batch) {
    batch.reset();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < max_cached_) free_.push_back(std::move(batch));
  }

 private:
  std::mutex mu_;
  std::vector<Batch> free_;
  std::size_t max_cached_;
};

}  // namespace hs::dedup
