// Core data types of the Dedup application (paper §IV-B).
//
// The paper's GPU refactoring fixes the batch size at 1 MB and lets rabin
// produce variable-size *blocks* inside each batch (Fig. 2): `start_pos`
// is the index vector every stage shares. A Batch flows through the
// 5-stage graph of Fig. 3: fragment -> SHA-1 -> duplicate check ->
// compress -> reorder/write.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/lzss.hpp"
#include "kernels/rabin.hpp"
#include "kernels/sha1.hpp"

namespace hs::dedup {

/// Block payload codec. kLzss is the paper's choice; kLzssHuffman layers a
/// canonical-Huffman entropy stage over the LZSS output (restoring the
/// missing half of PARSEC's gzip/bzip2, as an extension).
enum class DedupCodec : std::uint8_t {
  kLzss = 0,
  kLzssHuffman = 1,
};

struct DedupConfig {
  /// Fixed batch size (the paper's 1 MB; benches scale it).
  std::uint32_t batch_size = 1024 * 1024;
  kernels::RabinParams rabin;
  kernels::LzssParams lzss;
  DedupCodec codec = DedupCodec::kLzss;

  DedupConfig() {
    // Defaults tuned for tractable functional runs: ~2-16 kB blocks and a
    // 256-byte LZSS window (the window is a knob; the paper's 4 kB window
    // only changes constants, not the shape — see DESIGN.md).
    rabin.window = 32;
    rabin.min_block = 1024;
    rabin.max_block = 65536;
    rabin.mask = 0xFFF;
    rabin.magic = 0x78;
    lzss.window_size = 256;
  }
};

/// Per-block bookkeeping inside a batch.
struct BlockInfo {
  std::uint32_t start = 0;  ///< offset within the batch (from start_pos)
  std::uint32_t len = 0;
  kernels::Sha1Digest digest{};
  bool duplicate = false;
  /// kLzssHuffman mode: true when the entropy stage beat plain LZSS for
  /// this block (payload = u32 lzss_len | huffman(lzss)).
  bool entropy_coded = false;
  /// Global id: for unique blocks, the id this block defines; for
  /// duplicates, the id of the first occurrence.
  std::uint64_t global_id = 0;
  std::vector<std::uint8_t> compressed;  ///< unique blocks only
};

/// One stream item: a fixed-size chunk of input plus its rabin block index
/// (Fig. 2) and per-stage results.
struct Batch {
  std::uint64_t index = 0;
  std::vector<std::uint8_t> data;
  std::vector<std::uint32_t> start_pos;
  std::vector<BlockInfo> blocks;
  /// GPU path: FindMatch results for every batch position (Listing 3).
  std::vector<kernels::LzssMatch> matches;
};

}  // namespace hs::dedup
