// Shared internals of the modeled Dedup runners (dedup/modeled.cpp and the
// cluster generalization in cluster/modeled.cpp).
//
// Extracted so the cluster runner charges *exactly* the same kernel lane
// costs, copy sizes and CPU stage durations as the single-host run_fig5 —
// the 1-node cluster topology must reproduce the Fig. 5 numbers
// bit-for-bit (ROADMAP "sharding axis"), and sharing these bodies is what
// makes that a structural property instead of a hand-maintained promise.
// Not part of the public dedup API.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "dedup/modeled.hpp"
#include "gpusim/device.hpp"
#include "perfmodel/host_model.hpp"

namespace hs::dedup::detail {

/// GPU lane-cost scale factors: the simulator's cost unit is one simple
/// arithmetic step (one Mandelbrot iteration); one SHA-1 compression round
/// and one LZSS candidate comparison are worth roughly these many units.
inline constexpr double kSha1RoundUnits = 100.0;
inline constexpr double kLzssCompareUnits = 2.0;

/// One GPU memory space: stream + the tail ops the owner must respect.
struct Space {
  gpusim::Device* device = nullptr;
  gpusim::StreamId stream = 0;
  gpusim::OpHandle last_d2h;  ///< matches transfer of the previous batch
};

/// Charges the CPU-side costs of the classic stages.
struct CpuCosts {
  explicit CpuCosts(const perfmodel::HostProfile& h) : host(h) {}
  const perfmodel::HostProfile& host;

  double frag(const BatchCosts& b) const {
    return b.data_len * host.seconds_per_rabin_byte;
  }
  double hash(const BatchCosts& b) const {
    return static_cast<double>(b.sha1_rounds) * host.seconds_per_sha1_round;
  }
  double dupcheck(const BatchCosts& b) const {
    return static_cast<double>(b.block_count) * host.seconds_per_dupcheck;
  }
  double compress(const BatchCosts& b) const {
    return static_cast<double>(b.unique_match_cost_units) *
               host.seconds_per_lzss_unit +
           static_cast<double>(b.unique_bytes) * host.seconds_per_encode_byte;
  }
  double encode_walk(const BatchCosts& b) const {
    return static_cast<double>(b.unique_bytes) * host.seconds_per_encode_byte;
  }
  double write(const BatchCosts& b) const {
    return static_cast<double>(b.output_bytes) * host.seconds_per_output_byte;
  }
};

/// Enqueues the hash kernel for a batch: one lane per block, lane cost =
/// SHA-1 rounds (Listing-3-style trace-driven body).
inline gpusim::OpHandle launch_hash_kernel(const BatchCosts& b, Space& space) {
  const auto* lens = b.block_lens.data();
  const std::uint64_t nblocks = b.block_lens.size();
  auto r = space.device->launch(
      gpusim::Dim3{static_cast<std::uint32_t>((nblocks + 63) / 64), 1, 1},
      gpusim::Dim3{64, 1, 1}, {}, space.stream,
      [lens, nblocks](const gpusim::ThreadCtx& tc) -> double {
        std::uint64_t i = tc.global_x();
        if (i >= nblocks) return 1;
        return static_cast<double>(
                   kernels::Sha1::compression_rounds(lens[i])) *
               kSha1RoundUnits;
      });
  assert(r.ok());
  return r.value();
}

/// Enqueues the FindMatch work for a batch: either the optimized single
/// kernel over every position (Listing 3) or the pre-fix one-kernel-per-
/// block form (which also reads each block's matches back separately —
/// many small latency-bound transfers, part of why it was "very poor").
inline gpusim::OpHandle launch_findmatch(const BatchCosts& b, Space& space,
                                         const kernels::LzssParams& lzss,
                                         bool batched_kernel) {
  const auto& starts = b.start_pos;
  const std::uint64_t n = b.data_len;
  gpusim::OpHandle last;
  if (batched_kernel) {
    const auto* sp = starts.data();
    const std::size_t nsp = starts.size();
    auto r = space.device->launch(
        gpusim::Dim3{static_cast<std::uint32_t>((n + 255) / 256), 1, 1},
        gpusim::Dim3{256, 1, 1}, {}, space.stream,
        [sp, nsp, n, lzss](const gpusim::ThreadCtx& tc) -> double {
          std::uint64_t pos = tc.global_x();
          if (pos >= n) return 1;
          std::size_t lo = 0, hi = nsp;
          while (lo + 1 < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (sp[mid] <= pos) lo = mid;
            else hi = mid;
          }
          return static_cast<double>(
                     kernels::lzss_match_cost(sp[lo], pos, lzss)) *
                 kLzssCompareUnits;
        });
    assert(r.ok());
    last = r.value();
  } else {
    for (std::size_t k = 0; k < starts.size(); ++k) {
      std::uint64_t bs = starts[k];
      std::uint64_t be = k + 1 < starts.size() ? starts[k + 1] : n;
      std::uint64_t len = be - bs;
      auto r = space.device->launch(
          gpusim::Dim3{static_cast<std::uint32_t>((len + 255) / 256), 1, 1},
          gpusim::Dim3{256, 1, 1}, {}, space.stream,
          [bs, be, lzss](const gpusim::ThreadCtx& tc) -> double {
            std::uint64_t pos = bs + tc.global_x();
            if (pos >= be) return 1;
            return static_cast<double>(
                       kernels::lzss_match_cost(bs, pos, lzss)) *
                   kLzssCompareUnits;
          });
      assert(r.ok());
      last = r.value();
    }
  }
  return last;
}

/// Per-block match read-back of the pre-fix form: one small latency-bound
/// transfer per block instead of a single large one.
inline gpusim::OpHandle per_block_match_readback(const BatchCosts& b,
                                                 Space& space,
                                                 void* dev_scratch,
                                                 void* host_scratch) {
  gpusim::OpHandle last;
  const auto& starts = b.start_pos;
  for (std::size_t k = 0; k < starts.size(); ++k) {
    std::uint64_t bs = starts[k];
    std::uint64_t be =
        k + 1 < starts.size() ? starts[k + 1] : b.data_len;
    std::uint64_t bytes =
        std::max<std::uint64_t>(1, (be - bs) * sizeof(kernels::LzssMatch));
    auto r = space.device->memcpy_d2h(host_scratch, dev_scratch, bytes,
                                      space.stream,
                                      gpusim::HostMem::kPageable);
    assert(r.ok());
    last = r.value();
  }
  return last;
}

/// Scratch device/host buffers shared by the modeled copies. Functional
/// content is irrelevant (the trace already holds the results); sizes are
/// what the cost model consumes.
struct ScratchBuffers {
  std::vector<std::uint8_t> host;
  void* dev = nullptr;

  void ensure(gpusim::Device& device, std::size_t bytes) {
    if (host.size() < bytes) host.resize(bytes);
    if (dev == nullptr) {
      auto r = device.malloc(std::max<std::size_t>(bytes, 1));
      assert(r.ok());
      dev = r.value();
      dev_size = bytes;
    } else if (dev_size < bytes) {
      (void)device.free(dev);
      auto r = device.malloc(bytes);
      assert(r.ok());
      dev = r.value();
      dev_size = bytes;
    }
  }
  std::size_t dev_size = 0;
};

}  // namespace hs::dedup::detail
