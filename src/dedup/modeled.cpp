#include "dedup/modeled.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "dedup/modeled_detail.hpp"

namespace hs::dedup {

namespace {

using gpusim::Device;
using gpusim::Machine;
using gpusim::OpHandle;
using perfmodel::HostProfile;
using perfmodel::ModeledHost;

// Kernel/copy enqueue bodies and CPU stage costs live in modeled_detail.hpp
// so the cluster runner (cluster/modeled.cpp) charges identical durations.
using detail::CpuCosts;
using detail::launch_findmatch;
using detail::launch_hash_kernel;
using detail::per_block_match_readback;
using detail::ScratchBuffers;
using detail::Space;

bool is_cuda(Fig5Backend b) {
  return b == Fig5Backend::kCudaSingle || b == Fig5Backend::kSparCuda;
}
bool is_gpu(Fig5Backend b) {
  return b != Fig5Backend::kSequential && b != Fig5Backend::kSparCpu;
}

}  // namespace

std::string_view fig5_backend_name(Fig5Backend b) {
  switch (b) {
    case Fig5Backend::kSequential: return "sequential";
    case Fig5Backend::kSparCpu: return "spar-cpu";
    case Fig5Backend::kCudaSingle: return "cuda-1thread";
    case Fig5Backend::kOclSingle: return "opencl-1thread";
    case Fig5Backend::kSparCuda: return "spar+cuda";
    case Fig5Backend::kSparOcl: return "spar+opencl";
  }
  return "?";
}

DedupTrace build_trace(std::span<const std::uint8_t> input,
                       const DedupConfig& config, bool variable_batches) {
  DedupTrace trace;
  trace.input_bytes = input.size();
  DupCache cache;
  std::vector<Batch> batches = variable_batches
                                   ? fragment_input_variable(input, config)
                                   : fragment_input(input, config);
  for (Batch& batch : batches) {
    hash_blocks(batch);
    cache.check(batch);

    BatchCosts costs;
    costs.data_len = static_cast<std::uint32_t>(batch.data.size());
    costs.start_pos = batch.start_pos;
    costs.block_count = batch.blocks.size();
    costs.sha1_rounds = batch_sha1_rounds(batch);
    costs.match_cost_units = batch_match_cost(batch, config);
    costs.block_lens.reserve(batch.blocks.size());
    costs.shard_key.reserve(batch.blocks.size());
    for (const BlockInfo& block : batch.blocks) {
      costs.block_lens.push_back(block.len);
      costs.shard_key.push_back(block.digest[0]);
      if (block.duplicate) {
        ++trace.duplicate_blocks;
      } else {
        ++trace.unique_blocks;
        costs.unique_bytes += block.len;
        costs.unique_match_cost_units += static_cast<std::uint64_t>(
            (static_cast<double>(block.len) / batch.data.size()) *
            static_cast<double>(costs.match_cost_units));
      }
    }
    // Output bytes: compress unique blocks for real so the write-stage
    // cost and the reported compression come from actual LZSS output.
    compress_blocks_cpu(batch, config);
    costs.output_bytes = batch_output_bytes(batch);
    trace.output_bytes += costs.output_bytes;
    trace.batches.push_back(std::move(costs));
  }
  return trace;
}

Fig5Result run_fig5(const DedupTrace& trace, const Fig5Config& config,
                    Fig5Backend backend) {
  const HostProfile& host = config.host;
  CpuCosts cpu(host);
  const bool gpu = is_gpu(backend);
  const bool cuda = is_cuda(backend);
  const bool farm = backend == Fig5Backend::kSparCpu ||
                    backend == Fig5Backend::kSparCuda ||
                    backend == Fig5Backend::kSparOcl;
  // Single-thread GPU versions are single-GPU only (§IV-B: multi-GPU with
  // one thread "involves a lot of code refactoring, thus we chose for not
  // implementing it").
  const int devices = farm ? std::max(1, config.devices) : 1;
  const int mem_spaces = std::max(1, config.mem_spaces);
  const double enq = cuda ? host.gpu_enqueue_overhead
                          : host.gpu_enqueue_overhead * 1.5;
  const double item_ovh = host.spar_item_overhead;

  auto machine = Machine::Create(gpu ? devices : 0, config.device_spec);

  // Copy behaviour (§V-B): Dedup's realloc'd buffers cannot be pinned.
  // Both APIs therefore stage through pageable-speed transfers, but they
  // differ in *who waits*: CUDA's cudaMemcpyAsync from pageable memory
  // degrades to a synchronous copy (the issuing host thread blocks, so 2x
  // memory spaces cannot help), while OpenCL's runtime stages
  // asynchronously at the cost of heavier per-enqueue bookkeeping.
  const gpusim::HostMem host_mem = gpusim::HostMem::kPageable;

  Fig5Result out;
  out.label = std::string(fig5_backend_name(backend));
  if (gpu && !config.batched_kernel) out.label += " per-block-kernels";
  if (gpu && mem_spaces > 1) {
    out.label += " " + std::to_string(mem_spaces) + "x-mem";
  }
  if (farm && gpu && devices > 1) {
    out.label += " " + std::to_string(devices) + "gpu";
  }
  if (farm && gpu && config.sched == sched::SchedMode::kAdaptive) {
    out.label += " adaptive";
  }

  ScratchBuffers scratch;

  if (backend == Fig5Backend::kSequential) {
    ModeledHost seq(machine.get(), "seq");
    for (const BatchCosts& b : trace.batches) {
      seq.work(cpu.frag(b) + cpu.hash(b) + cpu.dupcheck(b) + cpu.compress(b) +
               cpu.write(b));
    }
    out.modeled_seconds = seq.finish_time();
  } else if (backend == Fig5Backend::kSparCpu) {
    // 19 workers do hashing and compression; fragmentation at the source,
    // duplicate check serial, writer serial (the paper's CPU pipeline).
    ModeledHost source(machine.get(), "source");
    ModeledHost dup(machine.get(), "dupcheck");
    ModeledHost writer(machine.get(), "writer");
    std::vector<std::unique_ptr<ModeledHost>> workers;
    for (int w = 0; w < std::max(1, config.replicas); ++w) {
      workers.push_back(std::make_unique<ModeledHost>(
          machine.get(), "worker" + std::to_string(w)));
    }
    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      const BatchCosts& b = trace.batches[i];
      des::TaskId emitted = source.work(cpu.frag(b) + item_ovh);
      ModeledHost& worker = *workers[i % workers.size()];
      des::TaskId hashed = worker.work_after(cpu.hash(b) + item_ovh, emitted);
      des::TaskId checked = dup.work_after(cpu.dupcheck(b) + item_ovh, hashed);
      des::TaskId compressed =
          worker.work_after(cpu.compress(b) + item_ovh, checked);
      writer.work_after(cpu.write(b) + item_ovh, compressed);
    }
    out.modeled_seconds = writer.finish_time();
  } else if (backend == Fig5Backend::kCudaSingle ||
             backend == Fig5Backend::kOclSingle) {
    ModeledHost driver(machine.get(), "driver");
    Device& dev = machine->device(0);
    std::vector<Space> spaces(static_cast<std::size_t>(mem_spaces));
    std::uint32_t max_len = 0;
    for (const BatchCosts& b : trace.batches) {
      max_len = std::max(max_len, b.data_len);
    }
    for (int s = 0; s < mem_spaces; ++s) {
      spaces[static_cast<std::size_t>(s)].device = &dev;
      spaces[static_cast<std::size_t>(s)].stream =
          s == 0 ? dev.default_stream() : dev.create_stream();
    }
    scratch.ensure(dev, static_cast<std::size_t>(max_len) * 5);

    // Software-pipelined driver loop: phase A enqueues a batch's GPU work
    // onto its memory space; phase B (run when the space is next needed,
    // in batch order) waits for the results, then duplicate-checks,
    // encodes and writes on the host. With 2 memory spaces, batch i+1's
    // transfers and kernels overlap batch i's host-side phase B — unless
    // the CUDA pageable-copy degradation blocks phase A's copies, which
    // is exactly why 2x memory spaces do not help the CUDA version.
    std::vector<int> pending(spaces.size(), -1);
    auto phase_b = [&](std::size_t slot) {
      int idx = pending[slot];
      if (idx < 0) return;
      pending[slot] = -1;
      const BatchCosts& b = trace.batches[static_cast<std::size_t>(idx)];
      driver.wait(spaces[slot].last_d2h.task);
      driver.work(cpu.dupcheck(b) + cpu.encode_walk(b) + cpu.write(b));
    };

    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      const BatchCosts& b = trace.batches[i];
      std::size_t slot = i % spaces.size();
      phase_b(slot);  // free the space (no-op the first time around)
      Space& space = spaces[slot];

      // Phase A: fragment on the host, enqueue H2D + hash + digest
      // read-back + FindMatch + match read-back.
      driver.work(cpu.frag(b));
      des::TaskId enq_t = driver.work(enq);
      perfmodel::stream_wait_host(dev, space.stream, enq_t);
      auto h2d = dev.memcpy_h2d(scratch.dev, scratch.host.data(), b.data_len,
                                space.stream, host_mem);
      assert(h2d.ok());
      if (cuda) driver.wait(h2d.value().task);  // pageable => synchronous

      driver.work(enq);
      launch_hash_kernel(b, space);
      driver.work(enq);
      auto d2h_digests = dev.memcpy_d2h(
          scratch.host.data(), scratch.dev,
          std::max<std::uint64_t>(1, b.block_count * 20), space.stream,
          host_mem);
      assert(d2h_digests.ok());
      if (cuda) driver.wait(d2h_digests.value().task);

      driver.work(enq *
                  (config.batched_kernel
                       ? 1.0
                       : static_cast<double>(std::max<std::uint64_t>(
                             1, b.block_count))));
      launch_findmatch(b, space, config.dedup.lzss, config.batched_kernel);
      OpHandle d2h_matches;
      if (config.batched_kernel) {
        driver.work(enq);
        auto r = dev.memcpy_d2h(
            scratch.host.data(), scratch.dev,
            std::max<std::uint64_t>(1,
                                    static_cast<std::uint64_t>(b.data_len) *
                                        sizeof(kernels::LzssMatch)),
            space.stream, host_mem);
        assert(r.ok());
        d2h_matches = r.value();
      } else {
        driver.work(enq * static_cast<double>(
                              std::max<std::uint64_t>(1, b.block_count)));
        d2h_matches = per_block_match_readback(b, space, scratch.dev,
                                               scratch.host.data());
      }
      if (cuda) driver.wait(d2h_matches.task);
      space.last_d2h = d2h_matches;
      pending[slot] = static_cast<int>(i);
    }
    // Drain remaining phase Bs in batch order.
    for (std::size_t i = 0; i < spaces.size(); ++i) {
      std::size_t slot =
          (trace.batches.size() + i) % spaces.size();
      phase_b(slot);
    }
    out.modeled_seconds = std::max(driver.finish_time(), machine->makespan());
  } else {
    // SPar + GPU (Fig. 3): source -> hash farm -> serial dup check ->
    // compress farm -> writer. Each worker owns mem_spaces memory spaces
    // on its round-robin device; an item's stream travels with it so the
    // compress stage reuses the data already on the GPU.
    ModeledHost source(machine.get(), "source");
    ModeledHost dup(machine.get(), "dupcheck");
    ModeledHost writer(machine.get(), "writer");
    const int replicas = std::max(1, config.replicas);
    std::vector<std::unique_ptr<ModeledHost>> hash_workers;
    std::vector<std::unique_ptr<ModeledHost>> comp_workers;
    for (int w = 0; w < replicas; ++w) {
      hash_workers.push_back(std::make_unique<ModeledHost>(
          machine.get(), "hash" + std::to_string(w)));
      comp_workers.push_back(std::make_unique<ModeledHost>(
          machine.get(), "comp" + std::to_string(w)));
    }
    // Memory spaces: one set per hash worker.
    std::uint32_t max_len = 0;
    for (const BatchCosts& b : trace.batches) {
      max_len = std::max(max_len, b.data_len);
    }
    std::vector<std::vector<Space>> spaces(
        static_cast<std::size_t>(replicas));
    std::vector<ScratchBuffers> dev_scratch(
        static_cast<std::size_t>(devices));
    for (int d = 0; d < devices; ++d) {
      dev_scratch[static_cast<std::size_t>(d)].ensure(
          machine->device(d), static_cast<std::size_t>(max_len) * 5);
    }
    for (int w = 0; w < replicas; ++w) {
      Device& dev = machine->device(w % devices);
      for (int s = 0; s < mem_spaces; ++s) {
        Space space;
        space.device = &dev;
        space.stream = dev.create_stream();
        spaces[static_cast<std::size_t>(w)].push_back(space);
      }
    }
    // Adaptive dispatch sees one flat pool of every memory space on every
    // device and routes each batch to the space whose in-flight d2h
    // completes earliest (an idle space scores 0, so all spaces get primed
    // before any is reused; strict < keeps ties on the lowest index).
    // The replica's host thread still does the enqueueing — only the
    // device binding becomes dynamic.
    const bool adaptive = config.sched == sched::SchedMode::kAdaptive;
    std::vector<Space*> pool;
    if (adaptive) {
      for (auto& ws : spaces) {
        for (Space& s : ws) pool.push_back(&s);
      }
    }
    auto least_loaded = [&]() -> Space& {
      std::size_t best = 0;
      double best_t = pool[0]->last_d2h.valid()
                          ? machine->finish_time(pool[0]->last_d2h.task)
                          : 0.0;
      for (std::size_t s = 1; s < pool.size(); ++s) {
        double t = pool[s]->last_d2h.valid()
                       ? machine->finish_time(pool[s]->last_d2h.task)
                       : 0.0;
        if (t < best_t) {
          best = s;
          best_t = t;
        }
      }
      return *pool[best];
    };

    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      const BatchCosts& b = trace.batches[i];
      des::TaskId emitted = source.work(cpu.frag(b) + item_ovh);

      const std::size_t w = i % static_cast<std::size_t>(replicas);
      ModeledHost& hw = *hash_workers[w];
      Space& space =
          adaptive ? least_loaded()
                   : spaces[w][(i / static_cast<std::size_t>(replicas)) %
                               spaces[w].size()];
      Device& dev = *space.device;
      ScratchBuffers& sc =
          dev_scratch[static_cast<std::size_t>(dev.index())];

      if (space.last_d2h.valid()) hw.wait(space.last_d2h.task);
      des::TaskId deps[1] = {emitted};
      hw.work(item_ovh + enq, deps);
      perfmodel::stream_wait_host(dev, space.stream, hw.tail());
      auto h2d = dev.memcpy_h2d(sc.dev, sc.host.data(), b.data_len,
                                space.stream, host_mem);
      assert(h2d.ok());
      if (cuda) hw.wait(h2d.value().task);
      hw.work(enq);
      launch_hash_kernel(b, space);
      hw.work(enq);
      auto d2h_digests = dev.memcpy_d2h(
          sc.host.data(), sc.dev,
          std::max<std::uint64_t>(1, b.block_count * 20), space.stream,
          host_mem);
      assert(d2h_digests.ok());
      hw.wait(d2h_digests.value().task);

      des::TaskId checked =
          dup.work_after(cpu.dupcheck(b) + item_ovh, hw.tail());

      // Compress farm: enqueue FindMatch on the item's stream (data is
      // already on the device), read matches back, encode on the CPU.
      ModeledHost& cw = *comp_workers[w];
      des::TaskId cdeps[1] = {checked};
      cw.work(item_ovh + enq * (config.batched_kernel
                                    ? 1.0
                                    : static_cast<double>(
                                          std::max<std::uint64_t>(
                                              1, b.block_count))),
              cdeps);
      perfmodel::stream_wait_host(dev, space.stream, cw.tail());
      launch_findmatch(b, space, config.dedup.lzss, config.batched_kernel);
      OpHandle d2h_matches;
      if (config.batched_kernel) {
        cw.work(enq);
        auto r = dev.memcpy_d2h(
            sc.host.data(), sc.dev,
            std::max<std::uint64_t>(1,
                                    static_cast<std::uint64_t>(b.data_len) *
                                        sizeof(kernels::LzssMatch)),
            space.stream, host_mem);
        assert(r.ok());
        d2h_matches = r.value();
      } else {
        cw.work(enq * static_cast<double>(
                          std::max<std::uint64_t>(1, b.block_count)));
        d2h_matches = per_block_match_readback(b, space, sc.dev,
                                               sc.host.data());
      }
      cw.wait(d2h_matches.task);
      space.last_d2h = d2h_matches;
      des::TaskId encoded = cw.work(cpu.encode_walk(b));

      writer.work_after(cpu.write(b) + item_ovh, encoded);
    }
    out.modeled_seconds =
        std::max(writer.finish_time(), machine->makespan());
  }

  for (int d = 0; d < machine->device_count(); ++d) {
    out.kernel_launches += machine->device(d).counters().kernels_launched;
  }
  out.throughput_mb_s = out.modeled_seconds > 0
                            ? static_cast<double>(trace.input_bytes) / 1e6 /
                                  out.modeled_seconds
                            : 0;
  return out;
}

}  // namespace hs::dedup
