#include "dedup/container.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "flow/adapters.hpp"
#include "flow/pipeline.hpp"

#include "kernels/huffman.hpp"

namespace hs::dedup {

namespace {

constexpr char kMagic[8] = {'H', 'S', 'D', 'E', 'D', 'U', 'P', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 4 + 4;

/// Cap on allocations driven by untrusted header fields. Sizes above this
/// are still decoded correctly (vectors grow on demand); the cap only stops
/// a corrupted length field from triggering a huge up-front reserve.
constexpr std::size_t kMaxPrealloc = std::size_t{64} << 20;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Bounds-checked little-endian reader.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = data_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool bytes(std::size_t n, std::span<const std::uint8_t>& out) {
    if (pos_ + n > data_.size()) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

struct Header {
  std::uint64_t original_size = 0;
  std::uint64_t batch_count = 0;
  kernels::LzssParams lzss;
  DedupCodec codec = DedupCodec::kLzss;
};

Result<Header> read_header(Reader& r) {
  std::span<const std::uint8_t> magic;
  if (!r.bytes(8, magic) ||
      std::memcmp(magic.data(), kMagic, 8) != 0) {
    return DataLoss("bad archive magic");
  }
  std::uint32_t version = 0, codec = 0;
  Header hdr;
  std::uint32_t window = 0, min_match = 0;
  if (!r.u32(version) || !r.u32(codec) || !r.u64(hdr.original_size) ||
      !r.u64(hdr.batch_count) || !r.u32(window) || !r.u32(min_match)) {
    return DataLoss("truncated archive header");
  }
  // Anything unreadable is data loss from the reader's point of view: a
  // flipped version or codec byte is indistinguishable from corruption.
  if (version != kVersion) {
    return DataLoss("unsupported archive version " + std::to_string(version));
  }
  if (codec > static_cast<std::uint32_t>(DedupCodec::kLzssHuffman)) {
    return DataLoss("unknown archive codec " + std::to_string(codec));
  }
  hdr.codec = static_cast<DedupCodec>(codec);
  if (min_match > (1u << kernels::LzssParams::kOffsetBits)) {
    return DataLoss("implausible LZSS min_match in header");
  }
  hdr.lzss.window_size = window;
  hdr.lzss.min_match = min_match;
  hdr.lzss.max_match = min_match + 15;
  if (!hdr.lzss.valid()) return DataLoss("invalid LZSS parameters in header");
  return hdr;
}

/// Validates one unique block's untrusted lengths before anything is
/// allocated from them: the block must fit its batch, and an entropy-coded
/// payload's LZSS length must be plausible for the raw length (LZSS adds at
/// most one flag byte per 8 items plus slack).
Status check_block_lengths(std::uint32_t raw_len, std::uint64_t decoded,
                           std::uint32_t original_len) {
  if (raw_len > original_len || decoded + raw_len > original_len) {
    return DataLoss("unique block exceeds its batch size");
  }
  return OkStatus();
}

Status check_lzss_len(std::uint32_t lzss_len, std::uint32_t raw_len) {
  if (lzss_len > std::uint64_t{raw_len} + raw_len / 8 + 16) {
    return DataLoss("implausible entropy-coded block length");
  }
  return OkStatus();
}

}  // namespace

ArchiveWriter::ArchiveWriter(const DedupConfig& config) : config_(config) {
  // push_back loop instead of range-insert: sidesteps a GCC 12
  // -Wstringop-overflow false positive on fresh vectors.
  for (char ch : kMagic) out_.push_back(static_cast<std::uint8_t>(ch));
  put_u32(out_, kVersion);
  put_u32(out_, static_cast<std::uint32_t>(config.codec));
  put_u64(out_, 0);  // original size (patched in finish)
  put_u64(out_, 0);  // batch count (patched in finish)
  put_u32(out_, config_.lzss.window_size);
  put_u32(out_, config_.lzss.min_match);
}

Status ArchiveWriter::append(const Batch& batch) {
  if (finished_) return FailedPrecondition("archive already finished");
  if (batch.index != next_batch_index_) {
    return FailedPrecondition(
        "batches must be appended in order: expected " +
        std::to_string(next_batch_index_) + ", got " +
        std::to_string(batch.index));
  }
  ++next_batch_index_;
  put_u64(out_, batch.index);
  put_u32(out_, static_cast<std::uint32_t>(batch.data.size()));
  put_u32(out_, static_cast<std::uint32_t>(batch.blocks.size()));
  for (const BlockInfo& block : batch.blocks) {
    if (block.duplicate) {
      put_u8(out_, 1);
      put_u64(out_, block.global_id);
    } else {
      put_u8(out_, block.entropy_coded ? 2 : 0);
      put_u32(out_, block.len);
      put_u32(out_, static_cast<std::uint32_t>(block.compressed.size()));
      out_.insert(out_.end(), block.compressed.begin(),
                  block.compressed.end());
    }
  }
  original_size_ += batch.data.size();
  ++batch_count_;
  return OkStatus();
}

std::vector<std::uint8_t> ArchiveWriter::finish(
    const kernels::Sha1Digest& input_digest) {
  finished_ = true;
  // Patch original size and batch count into the header.
  for (int i = 0; i < 8; ++i) {
    out_[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(original_size_ >> (8 * i));
    out_[24 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(batch_count_ >> (8 * i));
  }
  out_.insert(out_.end(), input_digest.begin(), input_digest.end());
  return std::move(out_);
}

Result<std::vector<std::uint8_t>> extract(
    std::span<const std::uint8_t> archive) {
  Reader r(archive);
  HS_ASSIGN_OR_RETURN(const Header hdr, read_header(r));

  std::vector<std::uint8_t> out;
  out.reserve(std::min<std::uint64_t>(hdr.original_size, kMaxPrealloc));
  std::vector<std::pair<std::size_t, std::uint32_t>> unique_blocks;  // (pos,len)

  for (std::uint64_t b = 0; b < hdr.batch_count; ++b) {
    std::uint64_t index = 0;
    std::uint32_t original_len = 0, block_count = 0;
    if (!r.u64(index) || !r.u32(original_len) || !r.u32(block_count)) {
      return DataLoss("truncated batch header");
    }
    if (index != b) return DataLoss("batch indices out of order");
    std::uint64_t decoded = 0;
    for (std::uint32_t k = 0; k < block_count; ++k) {
      std::uint8_t tag = 0;
      if (!r.u8(tag)) return DataLoss("truncated block tag");
      if (tag == 0 || tag == 2) {
        std::uint32_t raw_len = 0, comp_len = 0;
        std::span<const std::uint8_t> payload;
        if (!r.u32(raw_len) || !r.u32(comp_len) || !r.bytes(comp_len, payload)) {
          return DataLoss("truncated unique block");
        }
        HS_RETURN_IF_ERROR(check_block_lengths(raw_len, decoded, original_len));
        std::vector<std::uint8_t> block;
        if (tag == 2) {
          // Entropy-coded block: u32 lzss_len | huffman(lzss(block)).
          if (payload.size() < 4) return DataLoss("truncated codec prefix");
          std::uint32_t lzss_len = 0;
          for (int i = 0; i < 4; ++i) {
            lzss_len |= static_cast<std::uint32_t>(payload[i]) << (8 * i);
          }
          HS_RETURN_IF_ERROR(check_lzss_len(lzss_len, raw_len));
          HS_ASSIGN_OR_RETURN(
              auto lz, kernels::huffman_decode(payload.subspan(4), lzss_len));
          HS_ASSIGN_OR_RETURN(block,
                              kernels::lzss_decode(lz, raw_len, hdr.lzss));
        } else {
          HS_ASSIGN_OR_RETURN(
              block, kernels::lzss_decode(payload, raw_len, hdr.lzss));
        }
        unique_blocks.emplace_back(out.size(), raw_len);
        out.insert(out.end(), block.begin(), block.end());
        decoded += raw_len;
      } else if (tag == 1) {
        std::uint64_t ref = 0;
        if (!r.u64(ref)) return DataLoss("truncated duplicate reference");
        if (ref >= unique_blocks.size()) {
          return DataLoss("duplicate references a future block (id " +
                          std::to_string(ref) + ")");
        }
        auto [pos, len] = unique_blocks[ref];
        HS_RETURN_IF_ERROR(check_block_lengths(len, decoded, original_len));
        // Self-copy from already-decoded output. Grow first, then copy by
        // index: a self-range insert may reallocate mid-insert (the reserve
        // above is capped at kMaxPrealloc) and invalidate its own source
        // iterators.
        const std::size_t old_size = out.size();
        out.resize(old_size + len);
        std::copy(out.begin() + static_cast<long>(pos),
                  out.begin() + static_cast<long>(pos + len),
                  out.begin() + static_cast<long>(old_size));
        decoded += len;
      } else {
        return DataLoss("unknown block tag");
      }
    }
    if (decoded != original_len) {
      return DataLoss("batch decoded size mismatch");
    }
  }

  if (out.size() != hdr.original_size) {
    return DataLoss("archive decoded size mismatch");
  }
  std::span<const std::uint8_t> trailer;
  if (!r.bytes(20, trailer)) return DataLoss("missing integrity trailer");
  kernels::Sha1Digest expect{};
  std::memcpy(expect.data(), trailer.data(), 20);
  if (kernels::Sha1::hash(out) != expect) {
    return DataLoss("integrity check failed: SHA-1 mismatch");
  }
  return out;
}

Result<ArchiveInfo> inspect(std::span<const std::uint8_t> archive) {
  Reader r(archive);
  HS_ASSIGN_OR_RETURN(const Header hdr, read_header(r));
  ArchiveInfo info;
  info.original_size = hdr.original_size;
  info.batch_count = hdr.batch_count;
  for (std::uint64_t b = 0; b < hdr.batch_count; ++b) {
    std::uint64_t index = 0;
    std::uint32_t original_len = 0, block_count = 0;
    if (!r.u64(index) || !r.u32(original_len) || !r.u32(block_count)) {
      return DataLoss("truncated batch header");
    }
    for (std::uint32_t k = 0; k < block_count; ++k) {
      std::uint8_t tag = 0;
      if (!r.u8(tag)) return DataLoss("truncated block tag");
      if (tag == 0 || tag == 2) {
        std::uint32_t raw_len = 0, comp_len = 0;
        std::span<const std::uint8_t> payload;
        if (!r.u32(raw_len) || !r.u32(comp_len) ||
            !r.bytes(comp_len, payload)) {
          return DataLoss("truncated unique block");
        }
        ++info.unique_blocks;
        if (tag == 2) ++info.entropy_blocks;
        info.compressed_payload_bytes += comp_len;
      } else if (tag == 1) {
        std::uint64_t ref = 0;
        if (!r.u64(ref)) return DataLoss("truncated duplicate reference");
        ++info.duplicate_blocks;
      } else {
        return DataLoss("unknown block tag");
      }
    }
  }
  return info;
}

namespace {

/// One parsed block record for the parallel extractor.
struct ParsedBlock {
  bool duplicate = false;
  bool entropy = false;
  std::uint32_t raw_len = 0;
  std::uint64_t ref = 0;
  std::span<const std::uint8_t> payload;  // view into the archive
};

struct ParsedBatch {
  std::uint64_t index = 0;
  std::uint32_t original_len = 0;
  std::vector<ParsedBlock> blocks;
  // Filled by the decode farm: decoded payloads of unique blocks, in
  // block order (empty vectors for duplicates).
  std::vector<std::vector<std::uint8_t>> decoded;
};

}  // namespace

Result<std::vector<std::uint8_t>> extract_parallel(
    std::span<const std::uint8_t> archive, int replicas) {
  Reader r(archive);
  HS_ASSIGN_OR_RETURN(const Header header, read_header(r));

  std::vector<std::uint8_t> out;
  out.reserve(std::min<std::uint64_t>(header.original_size, kMaxPrealloc));
  std::vector<std::pair<std::size_t, std::uint32_t>> unique_blocks;
  Status pipeline_error;

  flow::Pipeline pipe;
  // Source: parse one batch per service call (serial, cheap).
  pipe.add_stage(
      flow::make_source<ParsedBatch>(
          [&r, &header, b = std::uint64_t{0}]() mutable
              -> std::optional<ParsedBatch> {
            if (b >= header.batch_count) return std::nullopt;
            ParsedBatch batch;
            std::uint32_t block_count = 0;
            if (!r.u64(batch.index) || !r.u32(batch.original_len) ||
                !r.u32(block_count) || batch.index != b) {
              throw std::runtime_error("truncated or misordered batch");
            }
            ++b;
            std::uint64_t claimed = 0;  // unique raw bytes declared so far
            for (std::uint32_t k = 0; k < block_count; ++k) {
              std::uint8_t tag = 0;
              if (!r.u8(tag)) throw std::runtime_error("truncated block tag");
              ParsedBlock block;
              if (tag == 1) {
                block.duplicate = true;
                if (!r.u64(block.ref)) {
                  throw std::runtime_error("truncated duplicate ref");
                }
              } else if (tag == 0 || tag == 2) {
                block.entropy = tag == 2;
                std::uint32_t comp_len = 0;
                if (!r.u32(block.raw_len) || !r.u32(comp_len) ||
                    !r.bytes(comp_len, block.payload)) {
                  throw std::runtime_error("truncated unique block");
                }
                // Bound the decode farm's allocations before handing the
                // untrusted length over.
                claimed += block.raw_len;
                if (block.raw_len > batch.original_len ||
                    claimed > batch.original_len) {
                  throw std::runtime_error(
                      "unique block exceeds its batch size");
                }
              } else {
                throw std::runtime_error("unknown block tag");
              }
              batch.blocks.push_back(block);
            }
            return batch;
          }),
      "parse");
  // Farm: decompress the unique payloads of each batch.
  pipe.add_farm(
      [&header] {
        return flow::make_stage<ParsedBatch, ParsedBatch>(
            [&header](ParsedBatch batch) {
              batch.decoded.resize(batch.blocks.size());
              for (std::size_t k = 0; k < batch.blocks.size(); ++k) {
                const ParsedBlock& block = batch.blocks[k];
                if (block.duplicate) continue;
                std::span<const std::uint8_t> payload = block.payload;
                Result<std::vector<std::uint8_t>> decoded =
                    DataLoss("unreachable");
                if (block.entropy) {
                  if (payload.size() < 4) {
                    throw std::runtime_error("truncated codec prefix");
                  }
                  std::uint32_t lzss_len = 0;
                  for (int i = 0; i < 4; ++i) {
                    lzss_len |= static_cast<std::uint32_t>(payload[i])
                                << (8 * i);
                  }
                  if (Status s = check_lzss_len(lzss_len, block.raw_len);
                      !s.ok()) {
                    throw std::runtime_error(s.ToString());
                  }
                  auto lz =
                      kernels::huffman_decode(payload.subspan(4), lzss_len);
                  if (!lz.ok()) throw std::runtime_error(lz.status().ToString());
                  decoded = kernels::lzss_decode(lz.value(), block.raw_len,
                                                 header.lzss);
                } else {
                  decoded = kernels::lzss_decode(payload, block.raw_len,
                                                 header.lzss);
                }
                if (!decoded.ok()) {
                  throw std::runtime_error(decoded.status().ToString());
                }
                batch.decoded[k] = std::move(decoded).value();
              }
              return batch;
            });
      },
      flow::FarmOptions{.replicas = std::max(1, replicas), .ordered = true},
      "decode");
  // Sink: assemble in order, resolving duplicate references.
  pipe.add_stage(
      flow::make_sink<ParsedBatch>([&](ParsedBatch batch) {
        std::uint64_t decoded_len = 0;
        for (std::size_t k = 0; k < batch.blocks.size(); ++k) {
          const ParsedBlock& block = batch.blocks[k];
          if (block.duplicate) {
            if (block.ref >= unique_blocks.size()) {
              throw std::runtime_error("duplicate references a future block");
            }
            auto [pos, len] = unique_blocks[block.ref];
            // Resize-then-copy: a self-range insert could reallocate and
            // invalidate its source iterators (reserve is capped).
            const std::size_t old_size = out.size();
            out.resize(old_size + len);
            std::copy(out.begin() + static_cast<long>(pos),
                      out.begin() + static_cast<long>(pos + len),
                      out.begin() + static_cast<long>(old_size));
            decoded_len += len;
          } else {
            unique_blocks.emplace_back(out.size(), block.raw_len);
            out.insert(out.end(), batch.decoded[k].begin(),
                       batch.decoded[k].end());
            decoded_len += block.raw_len;
          }
        }
        if (decoded_len != batch.original_len) {
          throw std::runtime_error("batch decoded size mismatch");
        }
      }),
      "assemble");

  if (Status s = pipe.run_and_wait(); !s.ok()) {
    // Stage exceptions surface as INTERNAL; re-tag as data loss (they all
    // describe archive corruption).
    return DataLoss(s.message());
  }

  if (out.size() != header.original_size) {
    return DataLoss("archive decoded size mismatch");
  }
  std::span<const std::uint8_t> trailer;
  if (!r.bytes(20, trailer)) return DataLoss("missing integrity trailer");
  kernels::Sha1Digest expect{};
  std::memcpy(expect.data(), trailer.data(), 20);
  if (kernels::Sha1::hash(out) != expect) {
    return DataLoss("integrity check failed: SHA-1 mismatch");
  }
  return out;
}

}  // namespace hs::dedup
