#include "dedup/stages.hpp"

#include <algorithm>

#include "kernels/huffman.hpp"
#include "kernels/simd/rabin_lanes.hpp"
#include "kernels/simd/sha1_mb.hpp"

namespace hs::dedup {

namespace {
// Per-thread kernel scratch: farm workers each warm their own copy on the
// first batch, after which the hot path stays allocation-free (the
// steady-state alloc gate in micro_substrate counts on this).
kernels::simd::RabinScratch& rabin_scratch() {
  static thread_local kernels::simd::RabinScratch scratch;
  return scratch;
}
struct HashScratch {
  std::vector<kernels::simd::Sha1Job> jobs;
  kernels::simd::Sha1Scratch grouping;
};
HashScratch& hash_scratch() {
  static thread_local HashScratch scratch;
  return scratch;
}
}  // namespace

Batch fragment_batch(std::span<const std::uint8_t> chunk, std::uint64_t index,
                     const DedupConfig& config) {
  kernels::Rabin rabin(config.rabin);
  Batch batch;
  fragment_batch_into(chunk, index, rabin, batch);
  return batch;
}

void fragment_batch_into(std::span<const std::uint8_t> chunk,
                         std::uint64_t index, const kernels::Rabin& rabin,
                         Batch& batch) {
  batch.reset();
  batch.index = index;
  batch.data.assign(chunk);
  // Lane-dispatched rabin scan; cuts are bit-identical to
  // rabin.chunk_boundaries_into at every SIMD level.
  kernels::simd::rabin_boundaries(rabin, batch.data.span(), batch.start_pos,
                                  &rabin_scratch());
  batch.blocks.reserve(batch.start_pos.size());
  for (std::size_t k = 0; k < batch.start_pos.size(); ++k) {
    BlockInfo block;
    block.start = batch.start_pos[k];
    std::uint32_t end = k + 1 < batch.start_pos.size()
                            ? batch.start_pos[k + 1]
                            : static_cast<std::uint32_t>(batch.data.size());
    block.len = end - block.start;
    block.bytes = std::span<const std::uint8_t>(batch.data.data() + block.start,
                                                block.len);
    batch.blocks.push_back(std::move(block));
  }
}

std::vector<Batch> fragment_input(std::span<const std::uint8_t> input,
                                  const DedupConfig& config) {
  std::vector<Batch> batches;
  const std::size_t bs = std::max<std::uint32_t>(1, config.batch_size);
  for (std::size_t off = 0, idx = 0; off < input.size();
       off += bs, ++idx) {
    std::size_t n = std::min(bs, input.size() - off);
    batches.push_back(fragment_batch(input.subspan(off, n), idx, config));
  }
  return batches;
}

std::vector<Batch> fragment_input_variable(
    std::span<const std::uint8_t> input, const DedupConfig& config) {
  // Coarse content-defined pass: expected chunk ~ batch_size, bounded to
  // [batch_size/8, 4*batch_size].
  kernels::RabinParams coarse = config.rabin;
  coarse.min_block = std::max<std::uint32_t>(coarse.window * 2,
                                             config.batch_size / 8);
  coarse.max_block = config.batch_size * 4;
  // Boundary when the low bits match; choose the mask for an expected
  // chunk length near batch_size (expected gap ~ mask+1 bytes).
  std::uint32_t mask = 1;
  while (mask + 1 < config.batch_size) mask = (mask << 1) | 1;
  coarse.mask = mask;
  kernels::Rabin rabin(coarse);
  auto starts = rabin.chunk_boundaries(input);

  std::vector<Batch> batches;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    std::size_t begin = starts[i];
    std::size_t end = i + 1 < starts.size() ? starts[i + 1] : input.size();
    batches.push_back(fragment_batch(input.subspan(begin, end - begin),
                                     static_cast<std::uint64_t>(i), config));
  }
  return batches;
}

void hash_blocks(Batch& batch, DupStore* store) {
  // The whole batch goes through the multi-buffer lane API in one call:
  // blocks hash in parallel SIMD lanes (4-way SSE4.2 / 8-way AVX2) with
  // digests written straight into the block table.
  HashScratch& scratch = hash_scratch();
  scratch.jobs.clear();
  scratch.jobs.reserve(batch.blocks.size());
  for (BlockInfo& block : batch.blocks) {
    scratch.jobs.push_back(
        {block.bytes.data(), block.bytes.size(), &block.digest});
  }
  kernels::simd::sha1_many(scratch.jobs.data(), scratch.jobs.size(),
                           &scratch.grouping);
  if (store != nullptr) {
    // Feed the persistent store from the hash stage, while the digests are
    // hot — lock-striped, so concurrent hash workers rarely contend. This
    // runs before the serial stage-3 check and never affects it.
    for (BlockInfo& block : batch.blocks) {
      bool present = false;
      store->record(block.digest, &present);
      block.store_hit = present;
    }
  }
}

std::uint64_t batch_sha1_rounds(const Batch& batch) {
  std::uint64_t rounds = 0;
  for (const BlockInfo& block : batch.blocks) {
    rounds += kernels::Sha1::compression_rounds(block.len);
  }
  return rounds;
}

namespace {

/// Applies the configured entropy stage over the LZSS payload already in
/// block.compressed, keeping whichever representation is smaller
/// (per-block best-of: the 132-byte table+prefix overhead makes entropy
/// coding a loss for small or already-dense blocks). Sets
/// block.entropy_coded accordingly.
void finish_payload(const DedupConfig& config, BlockInfo& block) {
  block.entropy_coded = false;
  if (config.codec != DedupCodec::kLzssHuffman) return;
  // Prefix the LZSS layer's size (little-endian u32) so the extractor
  // knows how much the entropy layer decodes to.
  auto huff = kernels::huffman_encode(block.compressed.span());
  if (4 + huff.size() < block.compressed.size()) {
    std::uint32_t n = static_cast<std::uint32_t>(block.compressed.size());
    PooledBuffer out;
    out.reserve(4 + huff.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    }
    out.append(huff.data(), huff.size());
    block.compressed = std::move(out);
    block.entropy_coded = true;
  }
}

}  // namespace

void compress_blocks_cpu(Batch& batch, const DedupConfig& config) {
  for (BlockInfo& block : batch.blocks) {
    if (block.duplicate) continue;
    kernels::lzss_encode(batch.data.span(), block.start,
                         block.start + block.len, config.lzss,
                         block.compressed);
    finish_payload(config, block);
  }
}

void find_batch_matches(Batch& batch, const DedupConfig& config) {
  if (batch.data.empty()) {
    batch.matches.clear();
    return;
  }
  kernels::find_matches_batch(batch.data.span(), batch.start_pos, config.lzss,
                              batch.matches);
}

void compress_blocks_from_matches(Batch& batch, const DedupConfig& config) {
  for (BlockInfo& block : batch.blocks) {
    if (block.duplicate) continue;
    kernels::lzss_encode_from_matches(batch.data.span(), block.start,
                                      block.start + block.len, batch.matches,
                                      config.lzss, block.compressed);
    finish_payload(config, block);
  }
}

std::uint64_t batch_match_cost(const Batch& batch,
                               const DedupConfig& config) {
  std::uint64_t total = 0;
  std::size_t block_idx = 0;
  for (std::size_t pos = 0; pos < batch.data.size(); ++pos) {
    while (block_idx + 1 < batch.start_pos.size() &&
           pos >= batch.start_pos[block_idx + 1]) {
      ++block_idx;
    }
    total += kernels::lzss_match_cost(batch.start_pos[block_idx], pos,
                                      config.lzss);
  }
  return total;
}

std::uint64_t batch_output_bytes(const Batch& batch) {
  std::uint64_t bytes = 16;  // batch record header
  for (const BlockInfo& block : batch.blocks) {
    bytes += block.duplicate ? 9 : 9 + block.compressed.size();
  }
  return bytes;
}

}  // namespace hs::dedup
