// Functional Dedup pipeline variants. All compose the stage functions of
// stages.hpp, so every variant emits a bit-identical archive; the GPU
// variants execute their hashing and FindMatch stages as simulated-GPU
// kernels through the cudax/oclx shims (real data flows through simulated
// device memory).
//
// The figure bench (Fig. 5) uses the modeled runners in dedup/modeled.hpp;
// these functional pipelines are the user-facing implementations (see
// examples/dedup_file.cpp) and the equivalence/roundtrip test subjects.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "dedup/container.hpp"
#include "dedup/dup_store.hpp"
#include "flow/pipeline.hpp"
#include "gpusim/device.hpp"
#include "sched/sched.hpp"

namespace hs::dedup {

/// Sequential reference: all five stages in a loop. With `store` non-null,
/// every block digest is also recorded into the persistent DupStore as it
/// is hashed (store_hit telemetry; see dup_store.hpp) — the archive bytes
/// are identical with or without a store attached.
Result<std::vector<std::uint8_t>> archive_sequential(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    DupStore* store);
inline Result<std::vector<std::uint8_t>> archive_sequential(
    std::span<const std::uint8_t> input, const DedupConfig& config) {
  return archive_sequential(input, config, nullptr);
}

/// Knobs for the SPar CPU pipeline's replicated hot stages. The hash and
/// compress stages always lower to farms (emitter/workers/collector), so
/// their scheduling and queue telemetry keep the same shape at any worker
/// count; the two farms are sized independently because their per-batch
/// costs differ by an order of magnitude (SHA-1 vs LZSS match search).
struct SparCpuOptions {
  int workers_hash = 1;      ///< SHA-1 farm replicas
  int workers_compress = 1;  ///< LZSS farm replicas
  /// Keep the hash farm ordered (the default). When false the farm's
  /// collector forwards batches in hash-completion order and its emitter
  /// schedules least-loaded, so a slow worker never head-of-line-blocks
  /// the others; the serial duplicate-check stage then restores stream
  /// order with a reorder buffer (the container format numbers unique
  /// blocks in stream order), so the archive is byte-identical to the
  /// sequential reference either way.
  bool hash_ordered = true;
  /// Core affinity for every runtime thread of the lowered pipeline.
  flow::PinPolicy pin;
  /// Optional persistent content store: when set, every hash worker
  /// record()s its block digests concurrently (the store is lock-striped
  /// for exactly this). Telemetry only — archive bytes are unchanged.
  DupStore* store = nullptr;
};

/// SPar CPU pipeline: source -> farm(SHA-1) -> serial duplicate check ->
/// farm(LZSS) -> writer (Fig. 3 graph on the CPU).
Result<std::vector<std::uint8_t>> archive_spar_cpu(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    const SparCpuOptions& options);

/// Back-compat form: both farms sized to `replicas`, ordered, unpinned.
Result<std::vector<std::uint8_t>> archive_spar_cpu(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    int replicas);

/// SPar + CUDA-shim pipeline: hashing and FindMatch stages offload to the
/// simulated GPUs (device chosen round-robin per worker, per-thread
/// cudaSetDevice, per-worker streams) — the Fig. 3 graph as implemented in
/// the paper. `machine` must be bound to cudax by the caller.
///
/// Fault tolerance: transient device errors retry under `policy`; a lost
/// device is excluded permanently and workers migrate to a survivor or run
/// the equivalent CPU stage (hash_blocks / compress_blocks_cpu), so the
/// archive is bit-identical under any injected fault sequence. Pass `stats`
/// for per-attempt telemetry (null to skip).
///
/// With `tracker` set (sched::SchedMode::kAdaptive) the per-replica device
/// round-robin is replaced by least-loaded selection with idle-device
/// stealing; lost devices are excluded tracker-wide so their queued batches
/// drain through the survivors. The archive bytes are identical either way.
/// With `failures` set, the region's full per-stage failure report is
/// copied out after the run (empty on clean runs) — callers can flag
/// unrecovered stage failures even when a partial archive was produced.
Result<std::vector<std::uint8_t>> archive_spar_cuda(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    int replicas, gpusim::Machine& machine, RetryStats* stats = nullptr,
    const RetryPolicy& policy = {},
    sched::DeviceLoadTracker* tracker = nullptr,
    flow::FailureReport* failures = nullptr);

/// Single-host-thread OpenCL-shim version. `batched_kernel` selects the
/// paper's optimized single FindMatch kernel per batch (true) or the
/// pre-optimization one-kernel-per-block form (false); outputs are
/// identical either way.
Result<std::vector<std::uint8_t>> archive_opencl_single_thread(
    std::span<const std::uint8_t> input, const DedupConfig& config,
    gpusim::Machine& machine, bool batched_kernel);

}  // namespace hs::dedup
