#include "cluster/modeled.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <span>

#include "dedup/modeled_detail.hpp"
#include "mandel/modeled_detail.hpp"
#include "perfmodel/host_model.hpp"

namespace hs::cluster {

namespace {

using dedup::BatchCosts;
using dedup::Fig5Backend;
using perfmodel::ModeledHost;

/// Fixed size of a cross-node work descriptor (batch/line handoff without
/// payload): stage pointers, offsets, sizes. Shared with the stage-graph
/// builders so the estimator predicts exactly what the runners send.
constexpr std::uint64_t kDescriptorBytes = 64;
/// Sharded dup-check wire sizes per block: query carries the 20-byte
/// digest + tag, the response an 8-byte id + flags.
constexpr std::uint64_t kShardQueryBytes = 24;
constexpr std::uint64_t kShardResponseBytes = 16;

std::vector<int> resolve_placement(const Placement& placement,
                                   std::size_t instances) {
  if (placement.node_of.empty()) {
    return std::vector<int>(instances, 0);
  }
  assert(placement.node_of.size() == instances &&
         "placement size does not match the stage-instance convention");
  return placement.node_of;
}

int max_node_devices(ClusterMachine& cluster) {
  int m = 0;
  for (int i = 0; i < cluster.node_count(); ++i) {
    m = std::max(m, cluster.node(i).device_count());
  }
  return m;
}

/// Accumulates measured per-stage compute profiles into
/// ClusterRunOptions::profile while a runner replays its schedule. All
/// methods are no-ops when profiling is off, so the hot loops stay
/// branch-cheap and the modeled schedule is never perturbed.
class Profiler {
 public:
  Profiler(const ClusterRunOptions& options, ClusterMachine& cluster,
           std::size_t expected_stages)
      : graph_(options.profile), timeline_(&cluster.timeline()) {
    (void)expected_stages;
    if (graph_ == nullptr) return;
    assert(graph_->stages.size() == expected_stages &&
           "profile graph does not match the run's stage convention");
    for (StageInstance& s : graph_->stages) s.compute = StageCompute{};
  }

  [[nodiscard]] bool on() const { return graph_ != nullptr; }

  void set_binding(std::size_t stage, GpuBinding binding) {
    if (graph_ == nullptr) return;
    graph_->stages[stage].compute.binding = binding;
  }

  /// Records one item processed by `stage`. `index` is the global item
  /// number (the device round-robin key under GpuBinding::kPerItem).
  void add(std::size_t stage, std::uint64_t index, double host_seconds,
           double gpu_seconds = 0, double copy_seconds = 0) {
    if (graph_ == nullptr) return;
    StageCompute& c = graph_->stages[stage].compute;
    c.host_seconds += host_seconds;
    c.gpu_seconds += gpu_seconds;
    c.copy_seconds += copy_seconds;
    c.items.push_back({index, host_seconds, gpu_seconds, copy_seconds});
  }

  /// Duration of a recorded timeline task (every gpusim op is one task).
  [[nodiscard]] double task_seconds(des::TaskId id) const {
    if (graph_ == nullptr || !id.valid()) return 0;
    return timeline_->finish_time(id) - timeline_->start_time(id);
  }

 private:
  StageGraph* graph_;
  des::Timeline* timeline_;
};

/// Fills the fabric/link fields, exports counters, dumps the trace.
void finalize(ClusterMachine& cluster, const ClusterRunOptions& options,
              ClusterRunResult& out) {
  out.kernel_launches = cluster.kernel_launches();
  out.fabric_bytes = cluster.fabric().total_bytes();
  out.fabric_transfers = cluster.fabric().total_transfers();
  out.links = cluster.fabric().link_stats();
  if (options.registry != nullptr) {
    cluster.fabric().export_counters(*options.registry,
                                     options.telemetry_prefix);
  }
  if (!options.trace_path.empty()) {
    (void)cluster.dump_chrome_trace(options.trace_path);
  }
}

}  // namespace

StageGraph dedup_stage_graph(const dedup::DedupTrace& trace, int replicas,
                             bool workers_need_gpu) {
  const int R = std::max(1, replicas);
  StageGraph g;
  g.stages.push_back({"source", false, -1, 1});
  g.stages.push_back({"dupcheck", false, -1, 1});
  g.stages.push_back({"writer", false, -1, 1});
  for (int w = 0; w < R; ++w) {
    // A GPU-farm replica is a hash worker + a compress worker (two host
    // threads); the CPU farm runs both phases on one thread.
    g.stages.push_back({"worker" + std::to_string(w), workers_need_gpu, -1,
                        workers_need_gpu ? 2 : 1});
  }

  const std::size_t n = g.stages.size();
  std::vector<std::vector<std::uint64_t>> acc(
      n, std::vector<std::uint64_t>(n, 0));
  std::vector<std::vector<std::uint64_t>> xfer(
      n, std::vector<std::uint64_t>(n, 0));
  for (std::size_t i = 0; i < trace.batches.size(); ++i) {
    const BatchCosts& b = trace.batches[i];
    const std::size_t w = 3 + i % static_cast<std::size_t>(R);
    acc[0][w] += b.data_len;                  // batch payload to the worker
    acc[w][1] += 20 * b.block_count;          // digests to the dup check
    acc[1][w] += b.block_count;               // decisions back
    acc[w][2] += b.output_bytes;              // archive bytes to the writer
    xfer[0][w] += 1;
    xfer[w][1] += 1;
    xfer[1][w] += 1;
    xfer[w][2] += 1;
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (acc[a][b] > 0) {
        g.edges.push_back({static_cast<int>(a), static_cast<int>(b),
                           acc[a][b], xfer[a][b]});
      }
    }
  }
  return g;
}

StageGraph mandel_stage_graph(int dim, int batch_lines, int workers,
                              bool workers_need_gpu) {
  const int W = std::max(1, workers);
  const int batch = std::max(1, batch_lines);
  StageGraph g;
  g.stages.push_back({"source", false, -1, 1});
  g.stages.push_back({"collector", false, -1, 1});
  for (int w = 0; w < W; ++w) {
    g.stages.push_back({"worker" + std::to_string(w), workers_need_gpu, -1,
                        1});
  }
  const std::size_t n = g.stages.size();
  std::vector<std::vector<std::uint64_t>> acc(
      n, std::vector<std::uint64_t>(n, 0));
  std::vector<std::vector<std::uint64_t>> xfer(
      n, std::vector<std::uint64_t>(n, 0));
  const int nbatches = (dim + batch - 1) / batch;
  for (int b = 0; b < nbatches; ++b) {
    const std::size_t w = 2 + static_cast<std::size_t>(b % W);
    const int count = std::min(batch, dim - b * batch);
    acc[0][w] += kDescriptorBytes;
    acc[w][1] += static_cast<std::uint64_t>(count) *
                 static_cast<std::uint64_t>(dim);
    xfer[0][w] += 1;
    xfer[w][1] += 1;
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (acc[a][b] > 0) {
        g.edges.push_back({static_cast<int>(a), static_cast<int>(b),
                           acc[a][b], xfer[a][b]});
      }
    }
  }
  return g;
}

ClusterRunResult run_fig5_cluster(const dedup::DedupTrace& trace,
                                  const dedup::Fig5Config& config,
                                  dedup::Fig5Backend backend,
                                  const ClusterRunOptions& options) {
  assert((backend == Fig5Backend::kSequential ||
          backend == Fig5Backend::kSparCpu ||
          backend == Fig5Backend::kSparCuda ||
          backend == Fig5Backend::kSparOcl) &&
         "single-thread GPU variants are single-node by definition");
  assert(config.sched == sched::SchedMode::kStatic &&
         "cluster runner models the paper's static schedules");

  const perfmodel::HostProfile& host = config.host;
  dedup::detail::CpuCosts cpu(host);
  const bool gpu = backend == Fig5Backend::kSparCuda ||
                   backend == Fig5Backend::kSparOcl;
  const bool cuda = backend == Fig5Backend::kSparCuda;
  const int replicas = std::max(1, config.replicas);
  const int mem_spaces = std::max(1, config.mem_spaces);
  const double enq = cuda ? host.gpu_enqueue_overhead
                          : host.gpu_enqueue_overhead * 1.5;
  const double item_ovh = host.spar_item_overhead;
  const gpusim::HostMem host_mem = gpusim::HostMem::kPageable;

  ClusterMachine cluster(options.topo);
  if (!options.trace_path.empty()) cluster.set_trace_recording(true);
  Fabric& fabric = cluster.fabric();
  const int N = cluster.node_count();

  ClusterRunResult out;
  out.label = std::string(dedup::fig5_backend_name(backend));
  const int max_dev = max_node_devices(cluster);
  if (gpu && !config.batched_kernel) out.label += " per-block-kernels";
  if (gpu && mem_spaces > 1) {
    out.label += " " + std::to_string(mem_spaces) + "x-mem";
  }
  if (gpu && max_dev > 1) out.label += " " + std::to_string(max_dev) + "gpu";

  if (backend == Fig5Backend::kSequential) {
    std::vector<int> place = resolve_placement(options.placement, 1);
    Profiler prof(options, cluster, 1);
    ModeledHost seq(&cluster.node(place[0]), "seq");
    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      const BatchCosts& b = trace.batches[i];
      const double cost = cpu.frag(b) + cpu.hash(b) + cpu.dupcheck(b) +
                          cpu.compress(b) + cpu.write(b);
      seq.work(cost);
      prof.add(0, i, cost);
    }
    out.modeled_seconds = seq.finish_time();
    out.throughput_mb_s =
        out.modeled_seconds > 0
            ? static_cast<double>(trace.input_bytes) / 1e6 / out.modeled_seconds
            : 0;
    finalize(cluster, options, out);
    return out;
  }

  std::vector<int> place = resolve_placement(
      options.placement, 3 + static_cast<std::size_t>(replicas));
  const int src_node = place[0];
  const int dup_node = place[1];
  const int wr_node = place[2];

  Profiler prof(options, cluster, 3 + static_cast<std::size_t>(replicas));
  if (gpu) {
    for (int w = 0; w < replicas; ++w) {
      prof.set_binding(3 + static_cast<std::size_t>(w),
                       GpuBinding::kPerStage);
    }
  }

  ModeledHost source(&cluster.node(src_node), "source");
  ModeledHost dup(&cluster.node(dup_node), "dupcheck");
  ModeledHost writer(&cluster.node(wr_node), "writer");

  // Shard services: shard s lives on node s (owner = key % N). Only built
  // for N > 1 — at one node every probe is local and charged to the dup
  // engine itself, exactly like the single-host schedule.
  std::vector<std::unique_ptr<ModeledHost>> shard_hosts;
  if (N > 1) {
    for (int n = 0; n < N; ++n) {
      shard_hosts.push_back(
          std::make_unique<ModeledHost>(&cluster.node(n), "shard"));
    }
  }

  /// Sharded duplicate check of batch `i` arriving at `arrived`.
  auto sharded_check = [&](std::size_t i, const BatchCosts& b,
                           des::TaskId arrived) -> des::TaskId {
    if (N == 1) {
      prof.add(1, i, cpu.dupcheck(b) + item_ovh);
      return dup.work_after(cpu.dupcheck(b) + item_ovh, arrived);
    }
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(N), 0);
    for (std::uint8_t key : b.shard_key) {
      counts[key % static_cast<std::size_t>(N)] += 1;
    }
    const double local = static_cast<double>(counts[static_cast<std::size_t>(
                             dup_node)]) *
                             host.seconds_per_dupcheck +
                         item_ovh;
    prof.add(1, i, local);
    dup.work_after(local, arrived);
    for (int o = 0; o < N; ++o) {
      const std::uint64_t k = counts[static_cast<std::size_t>(o)];
      if (o == dup_node || k == 0) continue;
      const auto h =
          static_cast<std::uint64_t>(fabric.hops(dup_node, o));
      des::TaskId query = fabric.send(dup_node, o, kShardQueryBytes * k,
                                      dup.tail(), "shard.query");
      out.shard_bytes += kShardQueryBytes * k * h;
      des::TaskId served = shard_hosts[static_cast<std::size_t>(o)]
                               ->work_after(static_cast<double>(k) *
                                                host.seconds_per_dupcheck,
                                            query);
      des::TaskId resp = fabric.send(o, dup_node, kShardResponseBytes * k,
                                     served, "shard.response");
      out.shard_bytes += kShardResponseBytes * k * h;
      dup.wait(resp);
    }
    return dup.tail();
  };

  if (backend == Fig5Backend::kSparCpu) {
    std::vector<std::unique_ptr<ModeledHost>> workers;
    for (int w = 0; w < replicas; ++w) {
      workers.push_back(std::make_unique<ModeledHost>(
          &cluster.node(place[3 + static_cast<std::size_t>(w)]),
          "worker" + std::to_string(w)));
    }
    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      const BatchCosts& b = trace.batches[i];
      const std::size_t w = i % workers.size();
      const int w_node = place[3 + w];
      des::TaskId emitted = source.work(cpu.frag(b) + item_ovh);
      prof.add(0, i, cpu.frag(b) + item_ovh);
      des::TaskId arrived_w =
          fabric.send(src_node, w_node, b.data_len, emitted, "batch");
      des::TaskId hashed =
          workers[w]->work_after(cpu.hash(b) + item_ovh, arrived_w);
      des::TaskId arrived_d = fabric.send(w_node, dup_node,
                                          20 * b.block_count, hashed,
                                          "digests");
      des::TaskId checked = sharded_check(i, b, arrived_d);
      des::TaskId arrived_back =
          fabric.send(dup_node, w_node, b.block_count, checked, "decisions");
      des::TaskId compressed =
          workers[w]->work_after(cpu.compress(b) + item_ovh, arrived_back);
      prof.add(3 + w, i, cpu.hash(b) + cpu.compress(b) + 2 * item_ovh);
      des::TaskId arrived_wr = fabric.send(w_node, wr_node, b.output_bytes,
                                           compressed, "archive");
      writer.work_after(cpu.write(b) + item_ovh, arrived_wr);
      prof.add(2, i, cpu.write(b) + item_ovh);
    }
    out.modeled_seconds = writer.finish_time();
  } else {
    // SPar + GPU farm (Fig. 3 graph): hash farm -> sharded dup check ->
    // compress farm, each replica's pair of host threads pinned to its
    // placement node and driving that node's GPUs.
    std::vector<std::unique_ptr<ModeledHost>> hash_workers;
    std::vector<std::unique_ptr<ModeledHost>> comp_workers;
    for (int w = 0; w < replicas; ++w) {
      gpusim::Machine& node =
          cluster.node(place[3 + static_cast<std::size_t>(w)]);
      hash_workers.push_back(std::make_unique<ModeledHost>(
          &node, "hash" + std::to_string(w)));
      comp_workers.push_back(std::make_unique<ModeledHost>(
          &node, "comp" + std::to_string(w)));
    }

    std::uint32_t max_len = 0;
    for (const BatchCosts& b : trace.batches) {
      max_len = std::max(max_len, b.data_len);
    }
    // Scratch per (node, device), mirroring the single-host per-device
    // scratch.
    std::vector<std::vector<dedup::detail::ScratchBuffers>> scratch(
        static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) {
      gpusim::Machine& node = cluster.node(n);
      scratch[static_cast<std::size_t>(n)].resize(
          static_cast<std::size_t>(node.device_count()));
      for (int d = 0; d < node.device_count(); ++d) {
        scratch[static_cast<std::size_t>(n)][static_cast<std::size_t>(d)]
            .ensure(node.device(d), static_cast<std::size_t>(max_len) * 5);
      }
    }

    // Memory spaces: one set per replica on its node's GPUs, round-robin
    // by the replica's rank on that node (reduces to w % devices on one
    // node — the single-host binding).
    std::vector<std::vector<dedup::detail::Space>> spaces(
        static_cast<std::size_t>(replicas));
    std::vector<int> node_rank(static_cast<std::size_t>(N), 0);
    std::vector<int> worker_dev(static_cast<std::size_t>(replicas), 0);
    for (int w = 0; w < replicas; ++w) {
      const int w_node = place[3 + static_cast<std::size_t>(w)];
      gpusim::Machine& node = cluster.node(w_node);
      assert(node.device_count() > 0 &&
             "GPU farm worker placed on a node without GPUs");
      const int d = node_rank[static_cast<std::size_t>(w_node)]++ %
                    node.device_count();
      worker_dev[static_cast<std::size_t>(w)] = d;
      gpusim::Device& dev = node.device(d);
      for (int s = 0; s < mem_spaces; ++s) {
        dedup::detail::Space space;
        space.device = &dev;
        space.stream = dev.create_stream();
        spaces[static_cast<std::size_t>(w)].push_back(space);
      }
    }

    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      const BatchCosts& b = trace.batches[i];
      des::TaskId emitted = source.work(cpu.frag(b) + item_ovh);
      prof.add(0, i, cpu.frag(b) + item_ovh);

      const std::size_t w = i % static_cast<std::size_t>(replicas);
      const int w_node = place[3 + w];
      ModeledHost& hw = *hash_workers[w];
      dedup::detail::Space& space =
          spaces[w][(i / static_cast<std::size_t>(replicas)) %
                    spaces[w].size()];
      gpusim::Device& dev = *space.device;
      dedup::detail::ScratchBuffers& sc =
          scratch[static_cast<std::size_t>(w_node)]
                 [static_cast<std::size_t>(
                     worker_dev[w])];

      const double compute_before =
          prof.on() ? dev.compute_busy_seconds() : 0;
      des::TaskId arrived_w =
          fabric.send(src_node, w_node, b.data_len, emitted, "batch");
      if (space.last_d2h.valid()) hw.wait(space.last_d2h.task);
      des::TaskId deps[1] = {arrived_w};
      hw.work(item_ovh + enq, deps);
      perfmodel::stream_wait_host(dev, space.stream, hw.tail());
      auto h2d = dev.memcpy_h2d(sc.dev, sc.host.data(), b.data_len,
                                space.stream, host_mem);
      assert(h2d.ok());
      if (cuda) hw.wait(h2d.value().task);
      hw.work(enq);
      dedup::detail::launch_hash_kernel(b, space);
      hw.work(enq);
      auto d2h_digests = dev.memcpy_d2h(
          sc.host.data(), sc.dev,
          std::max<std::uint64_t>(1, b.block_count * 20), space.stream,
          host_mem);
      assert(d2h_digests.ok());
      hw.wait(d2h_digests.value().task);

      des::TaskId arrived_d = fabric.send(w_node, dup_node,
                                          20 * b.block_count, hw.tail(),
                                          "digests");
      des::TaskId checked = sharded_check(i, b, arrived_d);
      des::TaskId arrived_back =
          fabric.send(dup_node, w_node, b.block_count, checked, "decisions");

      ModeledHost& cw = *comp_workers[w];
      des::TaskId cdeps[1] = {arrived_back};
      cw.work(item_ovh + enq * (config.batched_kernel
                                    ? 1.0
                                    : static_cast<double>(
                                          std::max<std::uint64_t>(
                                              1, b.block_count))),
              cdeps);
      perfmodel::stream_wait_host(dev, space.stream, cw.tail());
      dedup::detail::launch_findmatch(b, space, config.dedup.lzss,
                                      config.batched_kernel);
      gpusim::OpHandle d2h_matches;
      if (config.batched_kernel) {
        cw.work(enq);
        auto r = dev.memcpy_d2h(
            sc.host.data(), sc.dev,
            std::max<std::uint64_t>(1,
                                    static_cast<std::uint64_t>(b.data_len) *
                                        sizeof(kernels::LzssMatch)),
            space.stream, host_mem);
        assert(r.ok());
        d2h_matches = r.value();
      } else {
        cw.work(enq * static_cast<double>(
                          std::max<std::uint64_t>(1, b.block_count)));
        d2h_matches = dedup::detail::per_block_match_readback(
            b, space, sc.dev, sc.host.data());
      }
      cw.wait(d2h_matches.task);
      space.last_d2h = d2h_matches;
      des::TaskId encoded = cw.work(cpu.encode_walk(b));

      if (prof.on()) {
        const double blocks = static_cast<double>(
            std::max<std::uint64_t>(1, b.block_count));
        const double host_busy =
            item_ovh + 2 * enq +  // hash thread
            item_ovh + cpu.encode_walk(b) +
            (config.batched_kernel ? 2 * enq : 2 * enq * blocks);
        prof.add(3 + w, i, host_busy,
                 dev.compute_busy_seconds() - compute_before,
                 prof.task_seconds(h2d.value().task) +
                     prof.task_seconds(d2h_digests.value().task) +
                     prof.task_seconds(d2h_matches.task));
      }

      des::TaskId arrived_wr = fabric.send(w_node, wr_node, b.output_bytes,
                                           encoded, "archive");
      writer.work_after(cpu.write(b) + item_ovh, arrived_wr);
      prof.add(2, i, cpu.write(b) + item_ovh);
    }
    out.modeled_seconds =
        std::max(writer.finish_time(), cluster.makespan());
  }

  out.throughput_mb_s =
      out.modeled_seconds > 0
          ? static_cast<double>(trace.input_bytes) / 1e6 / out.modeled_seconds
          : 0;
  finalize(cluster, options, out);
  return out;
}

ClusterRunResult run_mandel_sequential_cluster(
    const mandel::IterationMap& map, const mandel::ModeledConfig& cfg,
    const ClusterRunOptions& options) {
  const int dim = map.params().dim;
  ClusterMachine cluster(options.topo);
  if (!options.trace_path.empty()) cluster.set_trace_recording(true);
  std::vector<int> place = resolve_placement(options.placement, 1);
  Profiler prof(options, cluster, 1);
  ModeledHost seq(&cluster.node(place[0]), "seq");

  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);
  for (int i = 0; i < dim; ++i) {
    map.render_line(i, std::span<std::uint8_t>(
                           image.data() + static_cast<std::size_t>(i) * dim,
                           static_cast<std::size_t>(dim)));
    const double cost = static_cast<double>(map.line_cost(i)) *
                            cfg.host.seconds_per_mandel_iter +
                        mandel::detail::show_cost(cfg.host, dim, 1);
    seq.work(cost);
    prof.add(0, static_cast<std::uint64_t>(i), cost);
  }

  ClusterRunResult out;
  out.label = "sequential";
  out.modeled_seconds = seq.finish_time();
  out.checksum = mandel::image_checksum(image);
  finalize(cluster, options, out);
  return out;
}

ClusterRunResult run_mandel_cpu_cluster(const mandel::IterationMap& map,
                                        const mandel::ModeledConfig& cfg,
                                        const ClusterRunOptions& options) {
  const int dim = map.params().dim;
  const double ovh =
      mandel::detail::item_overhead(cfg.host, mandel::CpuModel::kSpar);
  ClusterMachine cluster(options.topo);
  if (!options.trace_path.empty()) cluster.set_trace_recording(true);
  Fabric& fabric = cluster.fabric();

  const int nworkers = std::max(1, cfg.cpu_workers);
  std::vector<int> place = resolve_placement(
      options.placement, 2 + static_cast<std::size_t>(nworkers));
  const int src_node = place[0];
  const int sink_node = place[1];

  ModeledHost source(&cluster.node(src_node), "source");
  ModeledHost sink(&cluster.node(sink_node), "sink");
  std::vector<std::unique_ptr<ModeledHost>> workers;
  for (int w = 0; w < nworkers; ++w) {
    workers.push_back(std::make_unique<ModeledHost>(
        &cluster.node(place[2 + static_cast<std::size_t>(w)]),
        "worker" + std::to_string(w)));
  }

  Profiler prof(options, cluster, 2 + static_cast<std::size_t>(nworkers));
  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);
  for (int i = 0; i < dim; ++i) {
    des::TaskId emitted = source.work_after(ovh, des::TaskId{});
    prof.add(0, static_cast<std::uint64_t>(i), ovh);
    const std::size_t w = static_cast<std::size_t>(i) % workers.size();
    const int w_node = place[2 + w];
    map.render_line(i, std::span<std::uint8_t>(
                           image.data() + static_cast<std::size_t>(i) * dim,
                           static_cast<std::size_t>(dim)));
    des::TaskId arrived =
        fabric.send(src_node, w_node, kDescriptorBytes, emitted, "line");
    const double line_cost = static_cast<double>(map.line_cost(i)) *
                                 cfg.host.seconds_per_mandel_iter +
                             ovh;
    des::TaskId computed = workers[w]->work_after(line_cost, arrived);
    prof.add(2 + w, static_cast<std::uint64_t>(i), line_cost);
    des::TaskId delivered = fabric.send(
        w_node, sink_node, static_cast<std::uint64_t>(dim), computed,
        "pixels");
    sink.work_after(mandel::detail::show_cost(cfg.host, dim, 1) + ovh,
                    delivered);
    prof.add(1, static_cast<std::uint64_t>(i),
             mandel::detail::show_cost(cfg.host, dim, 1) + ovh);
  }

  ClusterRunResult out;
  out.label = "spar cpu";
  out.modeled_seconds = sink.finish_time();
  out.checksum = mandel::image_checksum(image);
  finalize(cluster, options, out);
  return out;
}

ClusterRunResult run_mandel_combined_cluster(
    const mandel::IterationMap& map, const mandel::ModeledConfig& cfg,
    mandel::GpuApi api, const ClusterRunOptions& options) {
  assert(cfg.sched == sched::SchedMode::kStatic &&
         "cluster runner models the paper's static schedule");
  const int dim = map.params().dim;
  const double movh =
      mandel::detail::item_overhead(cfg.host, mandel::CpuModel::kSpar);
  const double govh = mandel::detail::enqueue_overhead(cfg.host, api);
  const int batch = std::max(1, cfg.batch_lines);
  const int nworkers = std::max(1, cfg.combined_workers);

  ClusterMachine cluster(options.topo);
  if (!options.trace_path.empty()) cluster.set_trace_recording(true);
  Fabric& fabric = cluster.fabric();
  for (int n = 0; n < cluster.node_count(); ++n) {
    mandel::detail::apply_device_knobs(cluster.node(n), cfg);
  }

  std::vector<int> place = resolve_placement(
      options.placement, 2 + static_cast<std::size_t>(nworkers));
  const int src_node = place[0];
  const int col_node = place[1];

  ModeledHost source(&cluster.node(src_node), "source");
  ModeledHost collector(&cluster.node(col_node), "collector");
  std::vector<std::unique_ptr<ModeledHost>> workers;
  for (int w = 0; w < nworkers; ++w) {
    workers.push_back(std::make_unique<ModeledHost>(
        &cluster.node(place[2 + static_cast<std::size_t>(w)]),
        "worker" + std::to_string(w)));
  }

  // One memory space per worker per GPU of its node (the single-host
  // per-worker-per-device spaces, node-local).
  std::vector<std::vector<mandel::detail::MemSpace>> spaces(
      static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    const int w_node = place[2 + static_cast<std::size_t>(w)];
    gpusim::Machine& node = cluster.node(w_node);
    assert(node.device_count() > 0 &&
           "combined worker placed on a node without GPUs");
    for (int d = 0; d < node.device_count(); ++d) {
      gpusim::Device& dev = node.device(d);
      mandel::detail::MemSpace space;
      space.device = &dev;
      space.stream = dev.create_stream();
      auto buf = dev.malloc(static_cast<std::uint64_t>(batch) * dim);
      assert(buf.ok());
      space.dev_buf = static_cast<std::uint8_t*>(buf.value());
      spaces[static_cast<std::size_t>(w)].push_back(space);
    }
  }

  Profiler prof(options, cluster, 2 + static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    prof.set_binding(2 + static_cast<std::size_t>(w), GpuBinding::kPerItem);
  }
  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);
  const int nbatches = (dim + batch - 1) / batch;

  for (int b = 0; b < nbatches; ++b) {
    des::TaskId emitted = source.work_after(movh, des::TaskId{});
    prof.add(0, static_cast<std::uint64_t>(b), movh);

    const std::size_t w = static_cast<std::size_t>(b % nworkers);
    const int w_node = place[2 + w];
    auto& wspaces = spaces[w];
    const std::size_t d =
        static_cast<std::size_t>(b) % wspaces.size();
    mandel::detail::MemSpace& space = wspaces[d];
    ModeledHost& worker = *workers[w];

    if (space.last_d2h.valid()) worker.wait(space.last_d2h.task);
    des::TaskId arrived =
        fabric.send(src_node, w_node, kDescriptorBytes, emitted, "batch");
    des::TaskId deps[1] = {arrived};
    worker.work(movh + 2 * govh, deps);
    perfmodel::stream_wait_host(*space.device, space.stream, worker.tail());
    const int first = b * batch;
    const int count = std::min(batch, dim - first);
    const double compute_before =
        prof.on() ? space.device->compute_busy_seconds() : 0;
    space.last_d2h =
        mandel::detail::launch_batch(map, space, first, count, image);
    prof.add(2 + w, static_cast<std::uint64_t>(b), movh + 2 * govh,
             prof.on() ? space.device->compute_busy_seconds() - compute_before
                       : 0,
             prof.task_seconds(space.last_d2h.task));

    des::TaskId delivered = fabric.send(
        w_node, col_node,
        static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(dim),
        space.last_d2h.task, "pixels");
    collector.wait(delivered);
    collector.work(mandel::detail::show_cost(cfg.host, dim, count) + movh);
    prof.add(1, static_cast<std::uint64_t>(b),
             mandel::detail::show_cost(cfg.host, dim, count) + movh);
  }

  ClusterRunResult out;
  out.label = "spar+" + std::string(mandel::gpu_api_name(api));
  const int max_dev = max_node_devices(cluster);
  if (max_dev > 1) out.label += " " + std::to_string(max_dev) + "gpu";
  out.modeled_seconds =
      std::max(collector.finish_time(), cluster.makespan());
  out.checksum = mandel::image_checksum(image);
  finalize(cluster, options, out);
  return out;
}

}  // namespace hs::cluster
