#include "cluster/makespan.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hs::cluster {

namespace {

bool feasible(const StageInstance& stage, const NodeSpec& node) {
  return !stage.needs_gpu || !node.gpus.empty();
}

/// Total core overcommit of a placement: sum over nodes of the cores
/// requested beyond the node's capacity. The local search may rearrange
/// stages freely but must never make this worse, so within-capacity
/// graphs stay within capacity while graphs bigger than the cluster
/// (dedup's 19-replica farm on 1-2 nodes) remain placeable.
int total_overcommit(const StageGraph& graph, const Placement& p,
                     const Topology& topo) {
  std::vector<int> used(topo.nodes.size(), 0);
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    used[static_cast<std::size_t>(p.node_of[i])] += graph.stages[i].cores;
  }
  int over = 0;
  for (std::size_t n = 0; n < topo.nodes.size(); ++n) {
    over += std::max(0, used[n] - topo.nodes[n].cores);
  }
  return over;
}

}  // namespace

MakespanEstimator::MakespanEstimator(const StageGraph& graph,
                                     const Topology& topo)
    : graph_(graph), topo_(topo), routes_(compute_routes(topo)) {
  const int n = static_cast<int>(topo.nodes.size());
  link_of_.assign(static_cast<std::size_t>(n),
                  std::vector<int>(static_cast<std::size_t>(n), -1));
  for (const LinkSpec& spec : topo.links) {
    const int a = topo.node_index(spec.a);
    const int b = topo.node_index(spec.b);
    assert(a >= 0 && b >= 0);
    const int fwd = static_cast<int>(link_bw_.size());
    link_bw_.push_back(spec.bandwidth_bytes_per_s);
    link_lat_.push_back(spec.latency_s);
    link_nodes_.emplace_back(a, b);
    int bwd = fwd;  // half duplex: one serial engine both ways
    if (spec.full_duplex) {
      bwd = static_cast<int>(link_bw_.size());
      link_bw_.push_back(spec.bandwidth_bytes_per_s);
      link_lat_.push_back(spec.latency_s);
      link_nodes_.emplace_back(b, a);
    }
    link_of_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = fwd;
    link_of_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = bwd;
  }

  for (const StageInstance& s : graph_.stages) {
    for (const StageWorkItem& it : s.compute.items) {
      span_floor_ = std::max(
          span_floor_, it.host_seconds + it.gpu_seconds + it.copy_seconds);
    }
  }

  // Cyclic stage pairs (a->b and b->a both present) mark per-item
  // round-trip protocols; the endpoint with more cyclic partners is the
  // hub (dedup's duplicate-check stage, serving every farm replica).
  const std::size_t S = graph_.stages.size();
  std::vector<std::vector<bool>> adj(S, std::vector<bool>(S, false));
  for (const StageEdge& e : graph_.edges) {
    adj[static_cast<std::size_t>(e.from)][static_cast<std::size_t>(e.to)] =
        true;
  }
  std::vector<int> partners(S, 0);
  for (std::size_t a = 0; a < S; ++a) {
    for (std::size_t b = 0; b < S; ++b) {
      if (a != b && adj[a][b] && adj[b][a]) partners[a] += 1;
    }
  }
  hub_of_.assign(S, -1);
  for (std::size_t a = 0; a < S; ++a) {
    for (std::size_t b = 0; b < S; ++b) {
      if (a == b || !adj[a][b] || !adj[b][a]) continue;
      if (partners[b] > partners[a] && hub_of_[a] < 0) {
        hub_of_[a] = static_cast<int>(b);
      }
    }
  }
}

std::pair<double, double> MakespanEstimator::score(
    const Placement& placement) const {
  assert(placement.node_of.size() == graph_.stages.size());
  const std::size_t N = topo_.nodes.size();

  // Placement-independent floors: the longest single-stage host chain (a
  // stage is one serial engine however it is placed) and the span floor.
  double bound = span_floor_;
  for (const StageInstance& s : graph_.stages) {
    bound = std::max(bound, s.compute.host_seconds);
  }
  // Chain of the stages that feed the pipeline (no incoming edges — the
  // sources): the last item cannot leave the feeder before this, so sync
  // stages below finish at feeder_chain + their last item's service time.
  double feeder_chain = 0;
  {
    std::vector<bool> has_in(graph_.stages.size(), false);
    for (const StageEdge& e : graph_.edges) {
      has_in[static_cast<std::size_t>(e.to)] = true;
    }
    for (std::size_t i = 0; i < graph_.stages.size(); ++i) {
      if (!has_in[i]) {
        feeder_chain =
            std::max(feeder_chain, graph_.stages[i].compute.host_seconds);
      }
    }
  }

  // Per-node host occupancy and per-device compute occupancy, with device
  // bindings replayed exactly as the modeled runners assign them.
  std::vector<double> node_host(N, 0);
  std::vector<std::vector<double>> dev_busy(N);
  for (std::size_t nn = 0; nn < N; ++nn) {
    dev_busy[nn].assign(topo_.nodes[nn].gpus.size(), 0.0);
  }
  std::vector<int> rank(N, 0);  // kPerStage rank counter per node
  for (std::size_t i = 0; i < graph_.stages.size(); ++i) {
    const StageCompute& c = graph_.stages[i].compute;
    const auto nn = static_cast<std::size_t>(placement.node_of[i]);
    node_host[nn] += c.host_seconds;
    const int g = static_cast<int>(topo_.nodes[nn].gpus.size());
    if (c.binding == GpuBinding::kNone) continue;
    assert(g > 0 && "GPU-bound stage placed on a node without GPUs");
    if (c.binding == GpuBinding::kPerStage) {
      const int d = rank[nn]++ % g;
      dev_busy[nn][static_cast<std::size_t>(d)] += c.gpu_seconds;
    } else {  // kPerItem: the runner round-robins by global item index
      for (const StageWorkItem& it : c.items) {
        dev_busy[nn][it.index % static_cast<std::uint64_t>(g)] +=
            it.gpu_seconds;
      }
    }
  }

  double secondary = 0;
  for (std::size_t nn = 0; nn < N; ++nn) {
    const double occ =
        node_host[nn] / static_cast<double>(std::max(1, topo_.nodes[nn].cores));
    bound = std::max(bound, occ);
    secondary += occ * occ;
    for (double busy : dev_busy[nn]) {
      bound = std::max(bound, busy);
      secondary += busy * busy;
    }
  }

  // Link-direction busy: each crossing edge charges every hop of its route
  // with transfers x latency + bytes / bandwidth — the Fabric's accounting.
  {
    std::vector<double> slot(link_bw_.size(), 0.0);
    for (const StageEdge& e : graph_.edges) {
      int at = placement.node_of[static_cast<std::size_t>(e.from)];
      const int to = placement.node_of[static_cast<std::size_t>(e.to)];
      assert(routes_.hops[static_cast<std::size_t>(at)]
                         [static_cast<std::size_t>(to)] >= 0 &&
             "placement uses unreachable nodes");
      while (at != to) {
        const int nxt = routes_.next[static_cast<std::size_t>(at)]
                                    [static_cast<std::size_t>(to)];
        const int li = link_of_[static_cast<std::size_t>(at)]
                               [static_cast<std::size_t>(nxt)];
        assert(li >= 0);
        slot[static_cast<std::size_t>(li)] +=
            static_cast<double>(e.transfers) *
                link_lat_[static_cast<std::size_t>(li)] +
            static_cast<double>(e.bytes) / link_bw_[static_cast<std::size_t>(li)];
        at = nxt;
      }
    }
    for (double busy : slot) {
      bound = std::max(bound, busy);
      secondary += busy;
    }
  }

  // Drain tail: the feeder emits its last item at feeder_chain; that item
  // still has to run through its stage, so the makespan is at least the
  // feeder chain plus (most of) one item's service time. kDrainFraction
  // discounts the slice of the last item that overlaps the feeder (enqueue
  // work issued while earlier items still stream out).
  {
    double drain = 0;
    for (const StageInstance& s : graph_.stages) {
      const StageCompute& c = s.compute;
      if (c.items.empty()) continue;
      drain = std::max(drain, (c.host_seconds + c.gpu_seconds +
                               c.copy_seconds) /
                                  static_cast<double>(c.items.size()));
    }
    bound = std::max(bound, feeder_chain + kDrainFraction * drain);
  }

  // Gated-chain term: a stage in a cyclic exchange with a *remote* hub
  // (dedup replica vs duplicate-check) stalls per item on the round trip,
  // and the serial FIFO link engines interleave those control transfers
  // with the stage's own payload traffic in item order — so nearly the
  // whole per-item compute of every remote replica serializes through the
  // link slots it crosses (the PR-8 trace shows archives and decisions
  // alternating on one link direction at 2 nodes). Charge kChainFraction
  // of each gated stage's total compute to every distinct link slot on
  // its round-trip and payload routes; the busiest slot's chain is a
  // makespan term, and concentrating chains on few links (2 nodes) hurts
  // while spreading them over many links (8 nodes) does not — exactly the
  // measured inversion.
  {
    std::vector<double> chain(link_bw_.size(), 0.0);
    std::vector<char> seen(link_bw_.size(), 0);
    std::vector<int> touched;
    auto add_route = [&](int at, int to) {
      while (at != to) {
        const int nxt = routes_.next[static_cast<std::size_t>(at)]
                                    [static_cast<std::size_t>(to)];
        const int li = link_of_[static_cast<std::size_t>(at)]
                               [static_cast<std::size_t>(nxt)];
        assert(li >= 0);
        if (!seen[static_cast<std::size_t>(li)]) {
          seen[static_cast<std::size_t>(li)] = 1;
          touched.push_back(li);
        }
        at = nxt;
      }
    };
    double hub_payload = 0;
    for (std::size_t a = 0; a < graph_.stages.size(); ++a) {
      const int hub = hub_of_[a];
      if (hub < 0) continue;
      const int na = placement.node_of[a];
      const int nh = placement.node_of[static_cast<std::size_t>(hub)];
      const StageCompute& c = graph_.stages[a].compute;
      const double total =
          c.host_seconds + c.gpu_seconds + c.copy_seconds;
      if (total <= 0) continue;
      // Payload slots first: a payload edge (archive) is issued at the
      // *end* of the item's service, so when its route shares a link slot
      // with the hub's per-item control traffic (the hub talks to every
      // node each item — decisions to remote replicas, shard probes), the
      // FIFO inserts the item's whole service time into the hub's serial
      // loop. That is the catastrophic pattern the traces show: archives
      // out of (or into) the hub's node blocking the next batch's
      // shard.query on the same slot.
      touched.clear();
      for (const StageEdge& e : graph_.edges) {
        if (e.from != static_cast<int>(a) || e.to == hub) continue;
        add_route(na, placement.node_of[static_cast<std::size_t>(e.to)]);
      }
      bool payload_on_hub_slot = false;
      for (const int li : touched) {
        payload_on_hub_slot |= link_touches_node(li, nh);
      }
      if (payload_on_hub_slot) hub_payload += kHubPayloadFraction * total;
      // Round-trip legs ride the links too, but they are short control
      // messages issued early in the item's service; they serialize only
      // kChainFraction of the item per slot they cross.
      if (na != nh) {
        add_route(na, nh);
        add_route(nh, na);
      }
      for (const int li : touched) {
        seen[static_cast<std::size_t>(li)] = 0;
        chain[static_cast<std::size_t>(li)] += kChainFraction * total;
      }
    }
    double max_chain = 0;
    for (const double cl : chain) max_chain = std::max(max_chain, cl);
    bound = std::max(bound, max_chain);
    bound = std::max(bound, hub_payload);
    secondary += max_chain + hub_payload;
  }

  return {bound, secondary};
}

double MakespanEstimator::estimate(const Placement& placement) const {
  return score(placement).first;
}

Placement place_makespan(const StageGraph& graph, const Topology& topo) {
  const int n = static_cast<int>(topo.nodes.size());
  MakespanEstimator est(graph, topo);

  // Refine one seed by steepest descent: each step enumerates every
  // feasible single-stage move and pairwise swap, applies the one with the
  // lowest (bound, secondary) score (strict decrease required; enumeration
  // order breaks ties), and repeats until no candidate improves. Steeper
  // than first-improvement sweeps — the extra evaluations buy noticeably
  // better local optima on heterogeneous topologies, where early greedy
  // acceptances otherwise wall off the good basins. The refined bound
  // never exceeds the seed's, and identical inputs always walk the
  // identical path.
  auto refine = [&](Placement p) {
    std::pair<double, double> best = est.score(p);
    int overcommit = total_overcommit(graph, p, topo);
    constexpr int kMaxSteps = 512;  // accepted steps; each strictly improves
    for (int step = 0; step < kMaxSteps; ++step) {
      std::pair<double, double> round_best = best;
      int round_over = overcommit;
      int mv_stage = -1, mv_node = -1;  // best move: stage -> node
      int sw_a = -1, sw_b = -1;         // best swap: stage <-> stage
      // Moves: stage i -> node c, in (i, c) order.
      for (std::size_t i = 0; i < graph.stages.size(); ++i) {
        if (graph.stages[i].pinned_node >= 0) continue;
        const int cur = p.node_of[i];
        for (int c = 0; c < n; ++c) {
          if (c == cur) continue;
          if (!feasible(graph.stages[i],
                        topo.nodes[static_cast<std::size_t>(c)])) {
            continue;
          }
          p.node_of[i] = c;
          const int over = total_overcommit(graph, p, topo);
          if (over <= overcommit) {
            const std::pair<double, double> cand = est.score(p);
            if (cand < round_best) {
              round_best = cand;
              round_over = over;
              mv_stage = static_cast<int>(i);
              mv_node = c;
              sw_a = -1;
            }
          }
          p.node_of[i] = cur;
        }
      }
      // Swaps: stages (i, j), i < j, on different nodes.
      for (std::size_t i = 0; i < graph.stages.size(); ++i) {
        if (graph.stages[i].pinned_node >= 0) continue;
        for (std::size_t j = i + 1; j < graph.stages.size(); ++j) {
          if (graph.stages[j].pinned_node >= 0) continue;
          if (p.node_of[i] == p.node_of[j]) continue;
          const auto ni = static_cast<std::size_t>(p.node_of[i]);
          const auto nj = static_cast<std::size_t>(p.node_of[j]);
          if (!feasible(graph.stages[i], topo.nodes[nj]) ||
              !feasible(graph.stages[j], topo.nodes[ni])) {
            continue;
          }
          std::swap(p.node_of[i], p.node_of[j]);
          const int over = total_overcommit(graph, p, topo);
          if (over <= overcommit) {
            const std::pair<double, double> cand = est.score(p);
            if (cand < round_best) {
              round_best = cand;
              round_over = over;
              sw_a = static_cast<int>(i);
              sw_b = static_cast<int>(j);
              mv_stage = -1;
            }
          }
          std::swap(p.node_of[i], p.node_of[j]);
        }
      }
      if (mv_stage < 0 && sw_a < 0) break;  // local optimum
      if (mv_stage >= 0) {
        p.node_of[static_cast<std::size_t>(mv_stage)] = mv_node;
      } else {
        std::swap(p.node_of[static_cast<std::size_t>(sw_a)],
                  p.node_of[static_cast<std::size_t>(sw_b)]);
      }
      best = round_best;
      overcommit = round_over;
    }
    return std::make_pair(p, best);
  };

  auto [rr, rr_score] = refine(place_round_robin(graph, topo));
  auto [greedy, greedy_score] = refine(place_greedy(graph, topo));

  // Lower score wins; a full tie goes to the lexicographically smaller
  // node_of so the result is independent of seed order.
  if (greedy_score < rr_score) return greedy;
  if (rr_score < greedy_score) return rr;
  return greedy.node_of < rr.node_of ? greedy : rr;
}

}  // namespace hs::cluster
