#include "cluster/machine.hpp"

#include <cassert>

#include "des/trace_export.hpp"

namespace hs::cluster {

ClusterMachine::ClusterMachine(const Topology& topo)
    : topo_(topo), fabric_((assert(topo.validate().ok()), topo_), &timeline_) {
  nodes_.reserve(topo_.nodes.size());
  for (const NodeSpec& node : topo_.nodes) {
    nodes_.push_back(std::make_unique<gpusim::Machine>(
        node.gpus, &timeline_, &mutex_, node.name + "."));
  }
}

std::uint64_t ClusterMachine::kernel_launches() const {
  std::uint64_t launches = 0;
  for (const auto& node : nodes_) {
    for (int d = 0; d < node->device_count(); ++d) {
      launches += node->device(d).counters().kernels_launched;
    }
  }
  return launches;
}

Status ClusterMachine::dump_chrome_trace(const std::string& path) const {
  return des::write_chrome_trace(timeline_, path);
}

}  // namespace hs::cluster
