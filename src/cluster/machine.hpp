// ClusterMachine: N per-node gpusim::Machines and one Fabric behind a
// single shared clock.
//
// The machine owns the des::Timeline and the mutex; each node's
// gpusim::Machine is constructed in cluster form (external timeline +
// mutex, engine prefix "<node-name>."), so TaskIds are interchangeable
// across nodes and fabric transfers are ordinary dependencies. A 1-node
// ClusterMachine is behaviorally identical to a standalone gpusim::Machine:
// same engine set (modulo names), same submission maths.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/fabric.hpp"
#include "cluster/topology.hpp"
#include "des/timeline.hpp"
#include "gpusim/device.hpp"

namespace hs::cluster {

class ClusterMachine {
 public:
  /// `topo` must validate; asserts otherwise.
  explicit ClusterMachine(const Topology& topo);
  ClusterMachine(const ClusterMachine&) = delete;
  ClusterMachine& operator=(const ClusterMachine&) = delete;

  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] gpusim::Machine& node(int i) {
    return *nodes_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] des::Timeline& timeline() { return timeline_; }

  [[nodiscard]] double makespan() const { return timeline_.makespan(); }
  [[nodiscard]] double finish_time(des::TaskId id) const {
    return id.valid() ? timeline_.finish_time(id) : 0.0;
  }

  /// Kernel launches summed over every device of every node.
  [[nodiscard]] std::uint64_t kernel_launches() const;

  /// Per-op trace recording across all nodes and links (one Chrome-trace
  /// lane per engine, links included).
  void set_trace_recording(bool enabled) {
    timeline_.set_recording(enabled);
  }
  [[nodiscard]] Status dump_chrome_trace(const std::string& path) const;

 private:
  Topology topo_;
  des::Timeline timeline_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<gpusim::Machine>> nodes_;
  Fabric fabric_;
};

}  // namespace hs::cluster
