#include "cluster/topology.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <cstdlib>

namespace hs::cluster {

namespace {

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t j = i;
    while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j]))) ++j;
    if (j > i) out.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

/// "key=value" -> value, or empty when the token has a different key.
std::string_view kv(std::string_view token, std::string_view key) {
  if (token.size() > key.size() + 1 && token.substr(0, key.size()) == key &&
      token[key.size()] == '=') {
    return token.substr(key.size() + 1);
  }
  return {};
}

/// Strict double parse of the whole token (no exceptions; strtod + full
/// consumption check), scaled by `scale`.
bool parse_number(std::string_view s, double scale, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v * scale;
  return true;
}

bool parse_int(std::string_view s, int* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

/// Number with an optional decimal byte suffix (KB/MB/GB), case-insensitive.
bool parse_bytes_per_s(std::string_view s, double* out) {
  double scale = 1.0;
  auto ends_with_ci = [&](std::string_view suf) {
    if (s.size() < suf.size()) return false;
    for (std::size_t i = 0; i < suf.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(
              s[s.size() - suf.size() + i])) != suf[i]) {
        return false;
      }
    }
    return true;
  };
  if (ends_with_ci("GB")) {
    scale = 1e9;
    s.remove_suffix(2);
  } else if (ends_with_ci("MB")) {
    scale = 1e6;
    s.remove_suffix(2);
  } else if (ends_with_ci("KB")) {
    scale = 1e3;
    s.remove_suffix(2);
  }
  return parse_number(s, scale, out);
}

/// Number with a time suffix (s/ms/us/ns); a bare number means seconds.
bool parse_seconds(std::string_view s, double* out) {
  double scale = 1.0;
  auto strip = [&](std::string_view suf, double sc) {
    if (s.size() > suf.size() &&
        s.substr(s.size() - suf.size()) == suf) {
      scale = sc;
      s.remove_suffix(suf.size());
      return true;
    }
    return false;
  };
  // Order matters: "ms"/"us"/"ns" before the bare "s".
  if (!strip("ms", 1e-3) && !strip("us", 1e-6) && !strip("ns", 1e-9)) {
    strip("s", 1.0);
  }
  return parse_number(s, scale, out);
}

Status line_error(std::size_t lineno, const std::string& what) {
  return InvalidArgument("topology line " + std::to_string(lineno) + ": " +
                         what);
}

}  // namespace

int Topology::node_index(std::string_view name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Topology::validate() const {
  if (nodes.empty()) return InvalidArgument("topology has no nodes");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name.empty()) return InvalidArgument("node with empty name");
    if (nodes[i].cores <= 0) {
      return InvalidArgument("node '" + nodes[i].name +
                             "': cores must be positive");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (nodes[j].name == nodes[i].name) {
        return InvalidArgument("duplicate node '" + nodes[i].name + "'");
      }
    }
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkSpec& l = links[i];
    if (node_index(l.a) < 0) {
      return InvalidArgument("link references unknown node '" + l.a + "'");
    }
    if (node_index(l.b) < 0) {
      return InvalidArgument("link references unknown node '" + l.b + "'");
    }
    if (l.a == l.b) {
      return InvalidArgument("self-link on node '" + l.a + "'");
    }
    if (!(l.bandwidth_bytes_per_s > 0)) {
      return InvalidArgument("link " + l.a + "-" + l.b +
                             ": bandwidth must be positive");
    }
    if (l.latency_s < 0) {
      return InvalidArgument("link " + l.a + "-" + l.b +
                             ": negative latency");
    }
    for (std::size_t j = 0; j < i; ++j) {
      const LinkSpec& m = links[j];
      if ((m.a == l.a && m.b == l.b) || (m.a == l.b && m.b == l.a)) {
        return InvalidArgument("duplicate link " + l.a + "-" + l.b);
      }
    }
  }
  return OkStatus();
}

Result<Topology> parse_topology(std::string_view text) {
  Topology topo;
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> tok = split_ws(line);
    if (tok.empty()) continue;

    if (tok[0] == "node") {
      if (tok.size() < 2) return line_error(lineno, "node needs a name");
      NodeSpec node;
      node.name = tok[1];
      int gpus = 0;
      for (std::size_t t = 2; t < tok.size(); ++t) {
        if (auto v = kv(tok[t], "cores"); !v.empty()) {
          if (!parse_int(v, &node.cores)) {
            return line_error(lineno, "bad cores value '" + std::string(v) + "'");
          }
        } else if (auto g = kv(tok[t], "gpus"); !g.empty()) {
          if (!parse_int(g, &gpus)) {
            return line_error(lineno, "bad gpus value '" + std::string(g) + "'");
          }
          if (gpus < 0) return line_error(lineno, "gpus must be >= 0");
        } else {
          return line_error(lineno, "unknown node attribute '" + tok[t] + "'");
        }
      }
      node.gpus.assign(static_cast<std::size_t>(gpus),
                       gpusim::DeviceSpec::TitanXP());
      topo.nodes.push_back(std::move(node));
    } else if (tok[0] == "link") {
      if (tok.size() < 3) return line_error(lineno, "link needs two nodes");
      LinkSpec link;
      link.a = tok[1];
      link.b = tok[2];
      bool have_bw = false;
      for (std::size_t t = 3; t < tok.size(); ++t) {
        if (auto v = kv(tok[t], "bw"); !v.empty()) {
          if (!parse_bytes_per_s(v, &link.bandwidth_bytes_per_s)) {
            return line_error(lineno, "bad bw value '" + std::string(v) + "'");
          }
          have_bw = true;
        } else if (auto l = kv(tok[t], "lat"); !l.empty()) {
          if (!parse_seconds(l, &link.latency_s)) {
            return line_error(lineno, "bad lat value '" + std::string(l) + "'");
          }
        } else if (tok[t] == "half") {
          link.full_duplex = false;
        } else {
          return line_error(lineno, "unknown link attribute '" + tok[t] + "'");
        }
      }
      if (!have_bw) return line_error(lineno, "link needs bw=");
      topo.links.push_back(std::move(link));
    } else {
      return line_error(lineno, "unknown directive '" + tok[0] + "'");
    }
  }
  if (Status s = topo.validate(); !s.ok()) return s;
  return topo;
}

Routes compute_routes(const Topology& topo) {
  const int n = static_cast<int>(topo.nodes.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const LinkSpec& l : topo.links) {
    int a = topo.node_index(l.a);
    int b = topo.node_index(l.b);
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  // Lowest-index tie break: visit neighbors in sorted order.
  for (auto& v : adj) std::sort(v.begin(), v.end());

  Routes r;
  r.next.assign(static_cast<std::size_t>(n),
                std::vector<int>(static_cast<std::size_t>(n), -1));
  r.hops.assign(static_cast<std::size_t>(n),
                std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int s = 0; s < n; ++s) {
    auto& next = r.next[static_cast<std::size_t>(s)];
    auto& hops = r.hops[static_cast<std::size_t>(s)];
    next[static_cast<std::size_t>(s)] = s;
    hops[static_cast<std::size_t>(s)] = 0;
    // BFS from s; first_hop[d] is the neighbor of s the path starts with.
    std::deque<int> queue{s};
    std::vector<int> first_hop(static_cast<std::size_t>(n), -1);
    first_hop[static_cast<std::size_t>(s)] = s;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      for (int v : adj[static_cast<std::size_t>(u)]) {
        if (hops[static_cast<std::size_t>(v)] != -1) continue;
        hops[static_cast<std::size_t>(v)] =
            hops[static_cast<std::size_t>(u)] + 1;
        first_hop[static_cast<std::size_t>(v)] =
            u == s ? v : first_hop[static_cast<std::size_t>(u)];
        next[static_cast<std::size_t>(v)] =
            first_hop[static_cast<std::size_t>(v)];
        queue.push_back(v);
      }
    }
  }
  return r;
}

Topology full_mesh(int nodes, int gpus_per_node,
                   const gpusim::DeviceSpec& gpu_spec,
                   double bandwidth_bytes_per_s, double latency_s,
                   int cores_per_node) {
  Topology topo;
  for (int i = 0; i < nodes; ++i) {
    NodeSpec node;
    node.name = "n" + std::to_string(i);
    node.cores = cores_per_node;
    node.gpus.assign(static_cast<std::size_t>(std::max(0, gpus_per_node)),
                     gpu_spec);
    topo.nodes.push_back(std::move(node));
  }
  for (int a = 0; a < nodes; ++a) {
    for (int b = a + 1; b < nodes; ++b) {
      LinkSpec link;
      link.a = "n" + std::to_string(a);
      link.b = "n" + std::to_string(b);
      link.bandwidth_bytes_per_s = bandwidth_bytes_per_s;
      link.latency_s = latency_s;
      topo.links.push_back(std::move(link));
    }
  }
  return topo;
}

}  // namespace hs::cluster
