#include "cluster/shard.hpp"

#include <cassert>

namespace hs::cluster {

ShardedDupIndex::ShardedDupIndex(int nodes) {
  assert(nodes >= 1);
  shards_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    shards_.push_back(std::make_unique<dedup::DupStore>());
  }
  ids_.resize(static_cast<std::size_t>(nodes));
}

Status ShardedDupIndex::open(const std::string& dir) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Status s = shards_[i]->open(dir + "/shard-" + std::to_string(i));
    if (!s.ok()) return s;
  }
  return OkStatus();
}

Status ShardedDupIndex::spill() {
  for (auto& shard : shards_) {
    if (Status s = shard->spill(); !s.ok()) return s;
  }
  return OkStatus();
}

void ShardedDupIndex::check(dedup::Batch& batch, int origin_node) {
  for (dedup::BlockInfo& block : batch.blocks) {
    const int o = owner(block.digest);
    if (o == origin_node) {
      traffic_.local_lookups += 1;
    } else {
      traffic_.remote_lookups += 1;
    }
    auto& ids = ids_[static_cast<std::size_t>(o)];
    auto [it, inserted] = ids.try_emplace(block.digest, next_id_);
    if (inserted) {
      block.duplicate = false;
      block.global_id = next_id_++;
    } else {
      block.duplicate = true;
      block.global_id = it->second;
    }
    bool was_present = false;
    shards_[static_cast<std::size_t>(o)]->record(block.digest, &was_present);
    block.store_hit = was_present;
  }
}

}  // namespace hs::cluster
