// Cluster-scale modeled runners: the single-host Fig. 5 (dedup) and
// Fig. 1 (mandel) schedules generalized to a multi-node topology.
//
// The runners replay the *same* stage loops as dedup::run_fig5 and
// mandel::run_combined/run_cpu_pipeline — shared kernel/copy bodies from
// the modeled_detail headers — and interpose Fabric::send() wherever an
// item crosses a stage boundary whose instances a Placement puts on
// different nodes. Because send(a, a) is a no-op returning its dependency,
// a 1-node topology produces bit-identical numbers to the single-host
// runners (asserted by cluster_test and re-checked by bench/fig_cluster at
// every invocation).
//
// The duplicate check shards by content hash: block owner = digest lead
// byte % nodes (BatchCosts::shard_key), shard s served by node s. The dup
// stage probes its local shard for free and pays one fabric round trip
// (24 B/block query, 16 B/block response) per remote owner per batch,
// serialized on the owner's shard-service engine.
//
// Stage instance conventions (index into Placement::node_of):
//   dedup:           [0]=source  [1]=dupcheck  [2]=writer  [3+w]=worker w
//   mandel pipeline: [0]=source  [1]=sink/collector        [2+w]=worker w
// An empty placement means "everything on node 0".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "cluster/placement.hpp"
#include "cluster/topology.hpp"
#include "dedup/modeled.hpp"
#include "mandel/modeled.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::cluster {

struct ClusterRunOptions {
  Topology topo;
  /// Stage -> node map per the conventions above; empty = all on node 0.
  Placement placement;
  /// When set, the runner measures per-stage compute profiles while it
  /// replays the schedule — host busy seconds, device compute/copy
  /// occupancy and per-item costs — and writes them into this graph's
  /// StageInstance::compute fields (stage count must match the run's
  /// instance convention). Profiles feed the makespan estimator
  /// (cluster/makespan.hpp); measuring during a 1-node run keeps them
  /// placement-neutral. Pure observation: the modeled schedule is
  /// unchanged.
  StageGraph* profile = nullptr;
  /// When set, the run's full schedule (every node + link lane) is dumped
  /// as Chrome trace-event JSON to this path.
  std::string trace_path;
  /// When set, per-link counters are exported here under
  /// "<telemetry_prefix>.link.<a>-<b>.{transfers,bytes}".
  telemetry::Registry* registry = nullptr;
  std::string telemetry_prefix = "cluster";
};

struct ClusterRunResult {
  std::string label;
  double modeled_seconds = 0;
  double throughput_mb_s = 0;       ///< dedup: input MB (decimal) / second
  std::uint64_t checksum = 0;       ///< mandel: rendered image checksum
  std::uint64_t kernel_launches = 0;
  /// Fabric traffic, counted once per hop (a 2-hop transfer of B bytes
  /// adds 2B) — the same accounting predicted_cross_bytes uses.
  std::uint64_t fabric_bytes = 0;
  std::uint64_t fabric_transfers = 0;
  /// Portion of fabric_bytes due to sharded dup-check queries/responses
  /// (placement-independent; subtract to compare against the stage-graph
  /// estimator).
  std::uint64_t shard_bytes = 0;
  std::vector<Fabric::LinkStats> links;
};

/// Stage graph of the dedup pipeline with per-edge byte totals derived
/// from `trace` (source->worker batch payloads, worker->dup digests,
/// dup->worker decisions, worker->writer archive bytes). `workers_need_gpu`
/// marks worker instances GPU-feasible-only (the SPar+GPU backends).
StageGraph dedup_stage_graph(const dedup::DedupTrace& trace, int replicas,
                             bool workers_need_gpu);

/// Stage graph of the mandel combined/cpu pipeline: source->worker batch
/// descriptors, worker->collector rendered lines.
StageGraph mandel_stage_graph(int dim, int batch_lines, int workers,
                              bool workers_need_gpu);

/// Cluster form of dedup::run_fig5. Supported backends: kSequential,
/// kSparCpu, kSparCuda, kSparOcl (the single-thread GPU variants are
/// single-node by definition); config.sched must be kStatic and
/// config.devices is ignored — each worker uses the GPUs of its node.
ClusterRunResult run_fig5_cluster(const dedup::DedupTrace& trace,
                                  const dedup::Fig5Config& config,
                                  dedup::Fig5Backend backend,
                                  const ClusterRunOptions& options);

/// Cluster form of mandel::run_sequential (trivially node 0).
ClusterRunResult run_mandel_sequential_cluster(
    const mandel::IterationMap& map, const mandel::ModeledConfig& cfg,
    const ClusterRunOptions& options);

/// Cluster form of mandel::run_cpu_pipeline with CpuModel::kSpar.
ClusterRunResult run_mandel_cpu_cluster(const mandel::IterationMap& map,
                                        const mandel::ModeledConfig& cfg,
                                        const ClusterRunOptions& options);

/// Cluster form of mandel::run_combined (CpuModel::kSpar, static sched).
ClusterRunResult run_mandel_combined_cluster(const mandel::IterationMap& map,
                                             const mandel::ModeledConfig& cfg,
                                             mandel::GpuApi api,
                                             const ClusterRunOptions& options);

}  // namespace hs::cluster
