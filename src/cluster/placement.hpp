// Stage placement: mapping pipeline stage instances onto cluster nodes.
//
// The byte estimator predicts cross-link traffic of a candidate placement
// from per-edge byte totals (derived from a workload trace): an edge
// contributes bytes x hop-distance between its endpoints' nodes, which is
// exactly what the Fabric will charge when the schedule runs (each hop
// moves the full payload once). cluster_test pins the estimator to the
// fabric's actual byte counters on a dedup run.
//
// Stages additionally carry per-stage compute profiles (StageCompute):
// host busy seconds, GPU kernel/copy occupancy, and per-item costs,
// *measured* by the cluster modeled runners during a profiling run
// (ClusterRunOptions::profile) rather than hand-tuned — the same trace
// that feeds StageEdge::bytes. They power the makespan estimator and the
// makespan-aware placer in cluster/makespan.hpp.
//
// Baseline placers:
//   round_robin — instance k on node k % N (skipping infeasible nodes),
//                 the naive spread a stream runtime would do;
//   greedy      — pinned stages first, then free stages in order of
//                 descending incident bytes, each on the feasible node
//                 minimizing the added cost (capacity-aware; lowest index
//                 breaks ties). Deterministic, and strictly better than
//                 round-robin on traffic-skewed graphs like dedup's —
//                 but byte-greedy can trade away GPU parallelism, which
//                 is what place_makespan (makespan.hpp) fixes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/topology.hpp"

namespace hs::cluster {

/// How a stage's GPU work maps onto the devices of its node — mirrors the
/// binding conventions of the modeled runners, so the makespan estimator
/// can reconstruct per-device busy time for any candidate placement.
enum class GpuBinding : std::uint8_t {
  kNone,      ///< stage enqueues no device work
  kPerStage,  ///< stage bound to one device: rank-among-GPU-stages % gpus
              ///< (dedup farm replicas)
  kPerItem,   ///< items round-robin the node's devices by global item
              ///< index % gpus (mandel memory spaces)
};

/// One item processed by a stage, with its measured costs. `index` is the
/// global item number (batch index), the key the runners use to round-robin
/// devices in kPerItem binding.
struct StageWorkItem {
  std::uint64_t index = 0;
  double host_seconds = 0;  ///< host busy charged for this item
  double gpu_seconds = 0;   ///< device compute occupancy of this item
  double copy_seconds = 0;  ///< device copy-engine occupancy of this item
};

/// Measured compute profile of one stage instance over the whole run.
/// Filled by the modeled runners when ClusterRunOptions::profile points at
/// the graph being run; all-zero on an unprofiled graph.
struct StageCompute {
  double host_seconds = 0;  ///< total host-engine busy time
  double gpu_seconds = 0;   ///< total device compute occupancy
  double copy_seconds = 0;  ///< total device copy-engine occupancy
  GpuBinding binding = GpuBinding::kNone;
  std::vector<StageWorkItem> items;
};

struct StageInstance {
  StageInstance() = default;
  StageInstance(std::string n, bool gpu, int pin, int c)
      : name(std::move(n)), needs_gpu(gpu), pinned_node(pin), cores(c) {}

  std::string name;
  bool needs_gpu = false;  ///< only nodes with >= 1 GPU are feasible
  int pinned_node = -1;    ///< fixed assignment, -1 = placeable
  int cores = 1;           ///< host threads consumed on its node
  StageCompute compute;    ///< measured profile (see above)
};

struct StageEdge {
  StageEdge() = default;
  StageEdge(int f, int t, std::uint64_t b, std::uint64_t x = 0)
      : from(f), to(t), bytes(b), transfers(x) {}

  int from = 0;  ///< indices into StageGraph::stages
  int to = 0;
  std::uint64_t bytes = 0;      ///< total payload over the whole run
  std::uint64_t transfers = 0;  ///< item hand-offs (latency charges)
};

struct StageGraph {
  std::vector<StageInstance> stages;
  std::vector<StageEdge> edges;
};

/// node_of[i] = node of stage instance i.
struct Placement {
  std::vector<int> node_of;
};

/// Sum over edges of bytes x hops(node_of[from], node_of[to]).
std::uint64_t predicted_cross_bytes(const StageGraph& graph,
                                    const Placement& placement,
                                    const Topology& topo);

Placement place_round_robin(const StageGraph& graph, const Topology& topo);
Placement place_greedy(const StageGraph& graph, const Topology& topo);

}  // namespace hs::cluster
