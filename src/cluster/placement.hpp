// Stage placement: mapping pipeline stage instances onto cluster nodes.
//
// The cost estimator predicts cross-link traffic of a candidate placement
// from per-edge byte totals (derived from a workload trace): an edge
// contributes bytes x hop-distance between its endpoints' nodes, which is
// exactly what the Fabric will charge when the schedule runs (each hop
// moves the full payload once). cluster_test pins the estimator to the
// fabric's actual byte counters on a dedup run.
//
// Two placers:
//   round_robin — instance k on node k % N (skipping infeasible nodes),
//                 the naive spread a stream runtime would do;
//   greedy      — pinned stages first, then free stages in order of
//                 descending incident bytes, each on the feasible node
//                 minimizing the added cost (capacity-aware; lowest index
//                 breaks ties). Deterministic, and strictly better than
//                 round-robin on traffic-skewed graphs like dedup's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.hpp"

namespace hs::cluster {

struct StageInstance {
  std::string name;
  bool needs_gpu = false;  ///< only nodes with >= 1 GPU are feasible
  int pinned_node = -1;    ///< fixed assignment, -1 = placeable
  int cores = 1;           ///< host threads consumed on its node
};

struct StageEdge {
  int from = 0;  ///< indices into StageGraph::stages
  int to = 0;
  std::uint64_t bytes = 0;  ///< total payload over the whole run
};

struct StageGraph {
  std::vector<StageInstance> stages;
  std::vector<StageEdge> edges;
};

/// node_of[i] = node of stage instance i.
struct Placement {
  std::vector<int> node_of;
};

/// Sum over edges of bytes x hops(node_of[from], node_of[to]).
std::uint64_t predicted_cross_bytes(const StageGraph& graph,
                                    const Placement& placement,
                                    const Topology& topo);

Placement place_round_robin(const StageGraph& graph, const Topology& topo);
Placement place_greedy(const StageGraph& graph, const Topology& topo);

}  // namespace hs::cluster
