// Makespan-aware placement: an occupancy + transfer cost model and a
// deterministic local-search placer that optimizes the cluster layer's
// headline metric (modeled seconds) instead of a byte proxy.
//
// Why: the PR-8 sweep exposed a classic placement inversion — byte-greedy
// halves cross-node traffic but *loses* to round-robin on modeled time at
// 4+ nodes, because co-locating the heavy edges also collapses the GPU
// farm onto one node's devices. Minimizing bytes trades away parallelism.
//
// The MakespanEstimator lower-bounds the DES makespan of a placement as
// the maximum busy time over every serial resource the schedule will
// occupy, reconstructed from the measured per-stage profiles
// (StageCompute, emitted by the modeled runners) plus analytic transfer
// costs:
//
//   * per-stage host chains  — a stage is one serial ModeledHost engine;
//     sync-style stages (CUDA workers) additionally serialize on their
//     own device work, which wait_chain_fraction folds in;
//   * per-node host occupancy — sum of host seconds / node cores (the
//     many-core-machine-model occupancy term);
//   * per-device compute occupancy — per-stage GPU seconds mapped to
//     concrete devices by replaying the runners' binding conventions
//     (GpuBinding::kPerStage rank binding, kPerItem index round-robin),
//     which captures effects like two co-located heavy workers sharing
//     one device;
//   * per-link-direction busy — for each edge, transfers x latency +
//     bytes / bandwidth charged to every hop of its route, exactly the
//     Fabric's accounting;
//   * drain tail — the feeder chain plus (most of) the last item's
//     service time: the pipeline cannot finish before its source has
//     emitted everything and the final item has been served;
//   * gated chains — stages in a cyclic per-item exchange with a remote
//     hub (dedup replicas vs the duplicate-check stage) serialize most
//     of their per-item compute through the FIFO link engines their
//     round trips and payloads cross: the DES traces show decisions and
//     archives alternating on a link direction, so each batch's
//     downstream compute gates the next batch's control transfer. The
//     busiest link slot's accumulated chain is a makespan term — which
//     is exactly why round-robin collapses at 2 nodes (all chains on one
//     link pair) yet scales at 8 (chains spread across many links);
//   * span floor — the single most expensive item (kernel + copies +
//     host share) cannot be split, whatever the placement.
//
// The estimate is a *bound with slack*, not the DES: dependency stalls
// (decision round trips, pipeline ramp) are not modeled. fig_cluster pins
// estimate vs DES on every swept cell within kEstimatorPinFactor, the way
// predicted_cross_bytes is pinned exactly against the fabric counters.
//
// place_makespan seeds from both place_round_robin and place_greedy and
// refines each by steepest-descent move/swap local search under
// GPU-feasibility, pin, and capacity constraints. Everything is
// deterministic: every step enumerates all candidate moves in (stage,
// node) / (stage, stage) order and applies the single lowest-scoring one
// (enumeration order wins ties), and the final pick between the two
// refined candidates breaks estimate ties by lexicographically smaller
// node_of — so placements are bit-stable across runs, seed orders, and
// platforms.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/topology.hpp"

namespace hs::cluster {

/// Stated estimator-vs-DES tolerance: on every swept cell the DES makespan
/// must lie within [estimate, estimate * kEstimatorPinFactor]. The lower
/// edge is (near-)exact because the estimate is a lower bound built from
/// measured busy times; the upper edge absorbs dependency stalls the
/// resource model does not see. Checked by fig_cluster on every run and by
/// cluster_test on dedup + mandel at 1/2/4/8 nodes.
inline constexpr double kEstimatorPinFactor = 2.0;
/// Numerical slack on the lower edge (the bound is exact maths on the same
/// doubles the DES adds in a different order).
inline constexpr double kEstimatorLowerSlack = 1.0 + 1e-9;
/// Fraction of a gated stage's per-item compute that serializes through
/// each link slot its round trips and payloads cross (the rest overlaps
/// the neighbour batches' device work and the opposite link direction).
/// Calibrated against the dedup DES traces at 2/4/8 nodes; see the
/// gated-chain bullet above.
inline constexpr double kChainFraction = 0.4;
/// Fraction of a gated stage's per-item service time inserted into the
/// hub's serial per-item control loop when the stage's *payload* route
/// (archive) shares a link slot with the hub's control traffic — payloads
/// are issued at the end of the item's service, so the FIFO makes the
/// next item's control transfer wait out nearly the whole item.
inline constexpr double kHubPayloadFraction = 0.8;
/// Fraction of the last item's service time appended to the feeder chain
/// in the drain-tail term; the remainder overlaps the feeder's emission
/// of earlier items.
inline constexpr double kDrainFraction = 0.85;

class MakespanEstimator {
 public:
  /// `graph` and `topo` must outlive the estimator. Profiles may be
  /// all-zero (unprofiled graph): the estimate then reduces to the
  /// transfer bound and the placer degenerates toward byte-greedy.
  MakespanEstimator(const StageGraph& graph, const Topology& topo);

  /// Estimated makespan (seconds) of running the graph under `placement`.
  [[nodiscard]] double estimate(const Placement& placement) const;

  /// Ordering key used by place_makespan, compared lexicographically:
  /// first the makespan bound (== estimate()), then a secondary gradient
  /// (sum of squared occupancies + link busy + the busiest gated chain)
  /// that rewards balance and locality among placements whose bound ties
  /// — the bound is a max, so many distinct placements share it, and
  /// local search needs a slope to walk. The chain enters via its max,
  /// not its sum, so shaving one link's chain while another stays at the
  /// max is not an improvement — this keeps the search from collapsing
  /// the farm onto the hub's node. Deterministic, documented, not a time.
  [[nodiscard]] std::pair<double, double> score(
      const Placement& placement) const;

  /// The placement-independent span floor (most expensive single item).
  [[nodiscard]] double span_floor() const { return span_floor_; }

 private:
  const StageGraph& graph_;
  const Topology& topo_;
  Routes routes_;
  /// link_of_[a][b]: directed-engine slot for the a->b hop of adjacent
  /// nodes (-1 otherwise). Half-duplex links share one slot both ways.
  std::vector<std::vector<int>> link_of_;
  std::vector<double> link_bw_;   ///< bytes/s per directed-engine slot
  std::vector<double> link_lat_;  ///< seconds per transfer per slot
  /// Endpoint node pair of each directed-engine slot.
  std::vector<std::pair<int, int>> link_nodes_;
  /// Whether slot li's link has `node` as an endpoint.
  [[nodiscard]] bool link_touches_node(int li, int node) const {
    const auto& ab = link_nodes_[static_cast<std::size_t>(li)];
    return ab.first == node || ab.second == node;
  }
  /// hub_of_[i]: the cyclic-exchange hub of stage i (the partner with
  /// more cyclic partners — dedup's duplicate-check), or -1.
  std::vector<int> hub_of_;
  double span_floor_ = 0;
};

/// Makespan-aware placer: seed from round-robin and byte-greedy, refine
/// both by deterministic steepest-descent move/swap local search
/// minimizing the estimated makespan, return the better refined candidate
/// (estimate tie -> the lexicographically smaller node_of). Constraints: pinned stages never
/// move, needs_gpu stages only sit on nodes with >= 1 GPU, and a move may
/// not increase the cluster's total core overcommit (so within-capacity
/// graphs stay within capacity, while graphs bigger than the cluster can
/// still be rearranged).
Placement place_makespan(const StageGraph& graph, const Topology& topo);

}  // namespace hs::cluster
