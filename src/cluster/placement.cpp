#include "cluster/placement.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace hs::cluster {

namespace {

bool feasible(const StageInstance& stage, const NodeSpec& node) {
  return !stage.needs_gpu || !node.gpus.empty();
}

}  // namespace

std::uint64_t predicted_cross_bytes(const StageGraph& graph,
                                    const Placement& placement,
                                    const Topology& topo) {
  assert(placement.node_of.size() == graph.stages.size());
  Routes routes = compute_routes(topo);
  std::uint64_t total = 0;
  for (const StageEdge& e : graph.edges) {
    int a = placement.node_of[static_cast<std::size_t>(e.from)];
    int b = placement.node_of[static_cast<std::size_t>(e.to)];
    int h = routes.hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
    assert(h >= 0 && "placement uses unreachable nodes");
    total += e.bytes * static_cast<std::uint64_t>(h);
  }
  return total;
}

Placement place_round_robin(const StageGraph& graph, const Topology& topo) {
  const int n = static_cast<int>(topo.nodes.size());
  Placement p;
  p.node_of.assign(graph.stages.size(), 0);
  int k = 0;
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    const StageInstance& stage = graph.stages[i];
    if (stage.pinned_node >= 0) {
      p.node_of[i] = stage.pinned_node;
      continue;
    }
    // Next node in rotation that can host the stage (full mesh of GPU
    // nodes: plain k % N).
    int chosen = -1;
    for (int probe = 0; probe < n; ++probe) {
      int cand = (k + probe) % n;
      if (feasible(stage, topo.nodes[static_cast<std::size_t>(cand)])) {
        chosen = cand;
        k = cand + 1;
        break;
      }
    }
    assert(chosen >= 0 && "no feasible node for stage");
    p.node_of[i] = chosen;
  }
  return p;
}

Placement place_greedy(const StageGraph& graph, const Topology& topo) {
  const int n = static_cast<int>(topo.nodes.size());
  Routes routes = compute_routes(topo);
  Placement p;
  p.node_of.assign(graph.stages.size(), -1);

  std::vector<int> capacity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    capacity[static_cast<std::size_t>(i)] =
        topo.nodes[static_cast<std::size_t>(i)].cores;
  }

  // Pinned stages claim their nodes first.
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    if (graph.stages[i].pinned_node >= 0) {
      p.node_of[i] = graph.stages[i].pinned_node;
      capacity[static_cast<std::size_t>(p.node_of[i])] -=
          graph.stages[i].cores;
    }
  }

  // Free stages in descending order of incident bytes (place the heaviest
  // communicators while the most freedom remains); stable index tie break.
  std::vector<std::uint64_t> incident(graph.stages.size(), 0);
  for (const StageEdge& e : graph.edges) {
    incident[static_cast<std::size_t>(e.from)] += e.bytes;
    incident[static_cast<std::size_t>(e.to)] += e.bytes;
  }
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    if (p.node_of[i] < 0) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return incident[a] > incident[b];
                   });

  for (std::size_t i : order) {
    const StageInstance& stage = graph.stages[i];
    // Added cost on node c: bytes x hops to every already-placed neighbor.
    auto added_cost = [&](int c) {
      std::uint64_t cost = 0;
      for (const StageEdge& e : graph.edges) {
        std::size_t other;
        if (e.from == static_cast<int>(i)) {
          other = static_cast<std::size_t>(e.to);
        } else if (e.to == static_cast<int>(i)) {
          other = static_cast<std::size_t>(e.from);
        } else {
          continue;
        }
        int node = p.node_of[other];
        if (node < 0) continue;  // neighbor not placed yet
        cost += e.bytes *
                static_cast<std::uint64_t>(
                    routes.hops[static_cast<std::size_t>(c)]
                               [static_cast<std::size_t>(node)]);
      }
      return cost;
    };

    int best = -1;
    std::uint64_t best_cost = 0;
    bool best_has_capacity = false;
    int best_capacity = 0;
    for (int c = 0; c < n; ++c) {
      if (!feasible(stage, topo.nodes[static_cast<std::size_t>(c)])) continue;
      std::uint64_t cost = added_cost(c);
      bool has_capacity = capacity[static_cast<std::size_t>(c)] >= stage.cores;
      // Prefer: within capacity; then lowest added cost; then lowest index.
      // When every feasible node is over capacity (graph bigger than the
      // cluster), fall back to the least-loaded of the cheapest nodes.
      bool better;
      if (best < 0) {
        better = true;
      } else if (has_capacity != best_has_capacity) {
        better = has_capacity;
      } else if (cost != best_cost) {
        better = cost < best_cost;
      } else if (!has_capacity &&
                 capacity[static_cast<std::size_t>(c)] != best_capacity) {
        better = capacity[static_cast<std::size_t>(c)] > best_capacity;
      } else {
        better = false;
      }
      if (better) {
        best = c;
        best_cost = cost;
        best_has_capacity = has_capacity;
        best_capacity = capacity[static_cast<std::size_t>(c)];
      }
    }
    assert(best >= 0 && "no feasible node for stage");
    p.node_of[i] = best;
    capacity[static_cast<std::size_t>(best)] -= stage.cores;
  }
  return p;
}

}  // namespace hs::cluster
