// Cluster topology model: nodes (CPU cores + GPUs) joined by links with
// bandwidth/latency, parsed from a small text spec.
//
// The interconnect extends the intra-host cost model one level up: a link
// is to the fabric what a PCIe copy engine is to a device — a serial
// resource on which transfers of known size serialize (duration = latency
// + bytes/bandwidth), scheduled on the shared des::Timeline. The paper's
// single-host pipelines become the 1-node degenerate case.
//
// Spec grammar (one directive per line, '#' starts a comment):
//
//   node <name> cores=<int> gpus=<int>
//   link <a> <b> bw=<bytes/s> lat=<seconds> [half]
//
// bw accepts KB/MB/GB suffixes (decimal); lat accepts s/ms/us/ns. Links
// are full duplex unless marked `half` (one shared engine both ways).
// Validation rejects duplicate node names, duplicate links, self-links,
// links referencing unknown nodes, non-positive bandwidth, negative
// latency, and empty topologies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "gpusim/spec.hpp"

namespace hs::cluster {

struct NodeSpec {
  std::string name;
  int cores = 20;  ///< modeled host hardware threads
  std::vector<gpusim::DeviceSpec> gpus;
};

struct LinkSpec {
  std::string a;
  std::string b;
  double bandwidth_bytes_per_s = 0;
  double latency_s = 0;
  bool full_duplex = true;
};

struct Topology {
  std::vector<NodeSpec> nodes;
  std::vector<LinkSpec> links;

  /// Index of the named node, -1 when absent.
  [[nodiscard]] int node_index(std::string_view name) const;

  /// Structural validation per the rules above.
  [[nodiscard]] Status validate() const;
};

/// Parses the text spec; returns the validated topology or the first error
/// (with the offending line number in the message).
Result<Topology> parse_topology(std::string_view text);

/// All-pairs routing over a validated topology: BFS next hops (minimum hop
/// count, lowest-index tie break) and hop distances. hops[s][d] == -1 means
/// unreachable — transfers between such nodes are a programming error.
struct Routes {
  /// next[s][d]: the neighbor of s on the chosen path to d (next[s][s]==s).
  std::vector<std::vector<int>> next;
  /// hops[s][d]: path length in links; 0 on the diagonal.
  std::vector<std::vector<int>> hops;
};
Routes compute_routes(const Topology& topo);

/// N identical nodes, every pair joined by a full-duplex link — the bench
/// sweep's default shape.
Topology full_mesh(int nodes, int gpus_per_node,
                   const gpusim::DeviceSpec& gpu_spec,
                   double bandwidth_bytes_per_s, double latency_s,
                   int cores_per_node = 20);

}  // namespace hs::cluster
