#include "cluster/fabric.hpp"

#include <cassert>

namespace hs::cluster {

Fabric::Fabric(const Topology& topo, des::Timeline* timeline)
    : timeline_(timeline), routes_(compute_routes(topo)) {
  assert(timeline != nullptr);
  const int n = static_cast<int>(topo.nodes.size());
  link_of_.assign(static_cast<std::size_t>(n),
                  std::vector<int>(static_cast<std::size_t>(n), -1));
  for (const LinkSpec& spec : topo.links) {
    Link link;
    link.spec = spec;
    link.a = topo.node_index(spec.a);
    link.b = topo.node_index(spec.b);
    if (spec.full_duplex) {
      link.forward =
          timeline_->add_engine("link." + spec.a + ">" + spec.b);
      link.backward =
          timeline_->add_engine("link." + spec.b + ">" + spec.a);
    } else {
      link.forward =
          timeline_->add_engine("link." + spec.a + "<>" + spec.b);
      link.backward = link.forward;
    }
    int idx = static_cast<int>(links_.size());
    link_of_[static_cast<std::size_t>(link.a)]
            [static_cast<std::size_t>(link.b)] = idx;
    link_of_[static_cast<std::size_t>(link.b)]
            [static_cast<std::size_t>(link.a)] = idx;
    links_.push_back(link);
  }
}

des::TaskId Fabric::send(int from, int to, std::uint64_t bytes,
                         des::TaskId dep, std::string_view label) {
  if (from == to) return dep;
  assert(hops(from, to) > 0 && "no path between nodes");
  des::TaskId tail = dep;
  int at = from;
  while (at != to) {
    int nxt = routes_.next[static_cast<std::size_t>(at)]
                          [static_cast<std::size_t>(to)];
    int li = link_of_[static_cast<std::size_t>(at)]
                     [static_cast<std::size_t>(nxt)];
    assert(li >= 0);
    Link& link = links_[static_cast<std::size_t>(li)];
    des::EngineId engine = at == link.a ? link.forward : link.backward;
    double duration =
        link.spec.latency_s +
        static_cast<double>(bytes) / link.spec.bandwidth_bytes_per_s;
    if (tail.valid()) {
      des::TaskId deps[1] = {tail};
      tail = timeline_->submit(engine, duration, deps, label);
    } else {
      tail = timeline_->submit(engine, duration, {}, label);
    }
    link.transfers += 1;
    link.bytes += bytes;
    total_transfers_ += 1;
    total_bytes_ += bytes;
    at = nxt;
  }
  return tail;
}

std::vector<Fabric::LinkStats> Fabric::link_stats() const {
  std::vector<LinkStats> out;
  out.reserve(links_.size());
  for (const Link& link : links_) {
    LinkStats s;
    s.name = link.spec.a + "-" + link.spec.b;
    s.transfers = link.transfers;
    s.bytes = link.bytes;
    s.busy_seconds = timeline_->engine_stats(link.forward).busy;
    if (!(link.backward == link.forward)) {
      s.busy_seconds += timeline_->engine_stats(link.backward).busy;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void Fabric::export_counters(telemetry::Registry& registry,
                             const std::string& prefix) const {
  std::uint64_t bytes = 0;
  std::uint64_t transfers = 0;
  for (const Link& link : links_) {
    std::string base = prefix + ".link." + link.spec.a + "-" + link.spec.b;
    registry.counter(base + ".transfers")->add(link.transfers);
    registry.counter(base + ".bytes")->add(link.bytes);
    bytes += link.bytes;
    transfers += link.transfers;
  }
  registry.counter(prefix + ".fabric.transfers")->add(transfers);
  registry.counter(prefix + ".fabric.bytes")->add(bytes);
}

}  // namespace hs::cluster
