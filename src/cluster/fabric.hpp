// The interconnect fabric: schedules inter-node transfers on shared link
// engines of the cluster's des::Timeline.
//
// Each physical link contributes one timeline engine per direction when
// full duplex ("link.a>b", "link.b>a") or a single shared engine when half
// duplex ("link.a<>b"). A transfer of B bytes occupies its link engine for
// latency + B/bandwidth seconds — exactly how a device's PCIe copy engine
// serializes copies — so concurrent senders on one link queue up behind
// each other instead of magically sharing bandwidth. Multi-hop paths (from
// compute_routes) chain one task per hop.
//
// send(a, a, ...) is the intentional degenerate case: it returns the
// dependency unchanged and submits nothing, which is what makes a 1-node
// cluster schedule bit-identical to the single-host one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "des/timeline.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::cluster {

class Fabric {
 public:
  /// Registers the link engines on `timeline` (which must outlive the
  /// Fabric). `topo` must validate.
  Fabric(const Topology& topo, des::Timeline* timeline);

  /// Schedules a transfer of `bytes` from node `from` to node `to`,
  /// starting after `dep` (pass an invalid id for none). Returns the task
  /// whose finish is the arrival at `to` — `dep` itself when from == to.
  des::TaskId send(int from, int to, std::uint64_t bytes,
                   des::TaskId dep = {}, std::string_view label = {});

  /// Hop distance between two nodes (0 on the diagonal, -1 unreachable).
  [[nodiscard]] int hops(int from, int to) const {
    return routes_.hops[static_cast<std::size_t>(from)]
                       [static_cast<std::size_t>(to)];
  }

  /// Cumulative per-physical-link traffic (both directions combined).
  struct LinkStats {
    std::string name;          ///< "a-b" using the topology's node names
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    double busy_seconds = 0;   ///< engine busy time (sum of directions)
  };
  [[nodiscard]] std::vector<LinkStats> link_stats() const;

  /// Total bytes and transfers over all links (each hop counts once).
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_transfers() const {
    return total_transfers_;
  }

  /// Exports per-link counters into `registry` as
  /// "<prefix>.link.<a>-<b>.{transfers,bytes}" plus
  /// "<prefix>.fabric.{transfers,bytes}".
  void export_counters(telemetry::Registry& registry,
                       const std::string& prefix = "cluster") const;

 private:
  struct Link {
    LinkSpec spec;
    int a = 0;                ///< node indices
    int b = 0;
    des::EngineId forward;    ///< a -> b (and b -> a when half duplex)
    des::EngineId backward;   ///< b -> a (== forward when half duplex)
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
  };

  des::Timeline* timeline_;
  Routes routes_;
  std::vector<Link> links_;
  /// link_of_[a][b]: index into links_ for adjacent nodes, -1 otherwise.
  std::vector<std::vector<int>> link_of_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_transfers_ = 0;
};

}  // namespace hs::cluster
