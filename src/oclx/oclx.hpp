// OpenCL-style API over the simulated GPUs (paper §III-E).
//
// Follows the OpenCL host-programming workflow the paper describes:
//  1. discover platforms/devices;
//  2. create kernels for the devices;
//  3. manage host and device memory (buffers);
//  4. enqueue kernels and collect results via command queues and events.
//
// Semantics the paper's implementation effort hinges on, reproduced here:
//  * cl_kernel objects are NOT thread-safe ("must be allocated for each
//    thread", §IV-A): a Kernel enqueued concurrently from two threads
//    without re-owning it fails with kInvalidOperation — this is what
//    forced the paper to carry a cl_kernel + cl_command_queue inside every
//    stream item;
//  * command queues are in-order; reads/writes can be blocking or
//    non-blocking, returning Events; Event::wait_for_events is the
//    clWaitForEvents equivalent used by the paper's last pipeline stage;
//  * buffer creation fails with kOutOfResources when device memory is
//    exhausted (the paper's 10 MB-batch OpenCL failure).
//
// The surface is a C++ wrapper (in the spirit of cl.hpp) rather than the
// raw C API; error codes mirror CL_* names.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "gpusim/device.hpp"
#include "gpusim/spec.hpp"

namespace hs::oclx {

using gpusim::Dim3;
using gpusim::ThreadCtx;

/// CL_*-style status codes (subset).
enum class ClStatus : std::int8_t {
  kSuccess = 0,
  kDeviceNotFound,
  kInvalidValue,
  kInvalidContext,
  kInvalidCommandQueue,
  kInvalidKernel,
  kInvalidOperation,  ///< e.g. cl_kernel used from a foreign thread
  kOutOfResources,
  kInvalidEventWaitList,
  kDeviceNotAvailable,  ///< device lost / not available (sticky)
};

std::string_view status_name(ClStatus s);

/// Maps a simulator Status onto the closest ClStatus; used by the enqueue
/// paths so injected faults surface as CL_OUT_OF_RESOURCES /
/// CL_DEVICE_NOT_AVAILABLE rather than a generic invalid-value error.
ClStatus cl_status_from(const Status& s);

/// Inverse of cl_status_from, for callers feeding CL results into the common
/// retry machinery.
ErrorCode error_code_of(ClStatus s);

class Platform;
class DeviceId;
class Context;
class CommandQueue;
class Buffer;
class Kernel;
class Event;

/// A discovered platform (the simulation exposes exactly one).
class Platform {
 public:
  /// clGetPlatformIDs: platforms of the bound machine.
  static std::vector<Platform> get(gpusim::Machine* machine);

  [[nodiscard]] std::string name() const { return "HetStream SimCL"; }
  [[nodiscard]] std::string version() const { return "OpenCL 1.2 (sim)"; }

  /// clGetDeviceIDs.
  [[nodiscard]] std::vector<DeviceId> devices() const;

 private:
  explicit Platform(gpusim::Machine* machine) : machine_(machine) {}
  friend class DeviceId;
  gpusim::Machine* machine_;
};

/// A device id within a platform.
class DeviceId {
 public:
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::uint64_t global_mem_size() const;
  [[nodiscard]] std::uint32_t max_compute_units() const;
  [[nodiscard]] gpusim::Device* sim_device() const { return device_; }

 private:
  friend class Platform;
  friend class Context;
  friend class CommandQueue;
  DeviceId(gpusim::Machine* machine, int index);
  gpusim::Machine* machine_;
  gpusim::Device* device_;
};

/// clCreateContext over one or more devices.
class Context {
 public:
  static Result<Context> create(const std::vector<DeviceId>& devices);

  [[nodiscard]] const std::vector<DeviceId>& devices() const {
    return devices_;
  }

 private:
  explicit Context(std::vector<DeviceId> devices)
      : devices_(std::move(devices)) {}
  std::vector<DeviceId> devices_;
};

/// An event produced by an enqueue; wait() blocks virtually and returns the
/// virtual completion time.
class Event {
 public:
  Event() = default;

  [[nodiscard]] bool valid() const { return machine_ != nullptr; }
  /// clWaitForEvents on a single event.
  Result<double> wait() const;
  /// clWaitForEvents: virtual time when every event has completed.
  static Result<double> wait_for_events(const std::vector<Event>& events);

  [[nodiscard]] gpusim::OpHandle op() const { return op_; }

 private:
  friend class CommandQueue;
  Event(gpusim::Machine* machine, gpusim::OpHandle op)
      : machine_(machine), op_(op) {}
  gpusim::Machine* machine_ = nullptr;
  gpusim::OpHandle op_;
};

/// clCreateBuffer: device memory owned by a context, resident on one of the
/// context's devices (the simulation makes placement explicit).
class Buffer {
 public:
  static Result<Buffer> create(const Context& context, const DeviceId& device,
                               std::size_t bytes);
  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer();

  [[nodiscard]] void* data() const { return ptr_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }
  [[nodiscard]] gpusim::Device* device() const { return device_; }

 private:
  Buffer(gpusim::Device* device, void* ptr, std::size_t bytes)
      : device_(device), ptr_(ptr), bytes_(bytes) {}
  gpusim::Device* device_ = nullptr;
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

/// clCreateKernel: a kernel object bound to a functor. NOT thread-safe —
/// enqueues must come from the owning thread; ownership is taken by the
/// first enqueue and can be transferred explicitly with acquire().
class Kernel {
 public:
  /// `body` is invoked once per work-item with a ThreadCtx whose global id
  /// is get_global_id(); it may return an integral cost or void.
  template <typename F>
  static Kernel create(std::string name, F body);

  [[nodiscard]] const std::string& name() const { return impl_->name; }

  /// Transfers ownership to the calling thread (the escape hatch a
  /// correctly-synchronized program may use; the paper instead allocated
  /// one kernel per stream item).
  void acquire() { impl_->owner.store(std::this_thread::get_id()); }

 private:
  friend class CommandQueue;
  struct Impl {
    std::string name;
    // Type-erased launcher: (device, grid, block, stream) -> op handle.
    std::function<Result<gpusim::OpHandle>(gpusim::Device&, const Dim3&,
                                           const Dim3&, gpusim::StreamId)>
        launch;
    std::atomic<std::thread::id> owner{};  // default: unowned
  };
  std::shared_ptr<Impl> impl_;
};

/// clCreateCommandQueue: in-order queue on one device.
class CommandQueue {
 public:
  static Result<CommandQueue> create(const Context& context,
                                     const DeviceId& device);

  /// clEnqueueWriteBuffer. `blocking` waits (virtually) for completion.
  ClStatus enqueue_write(Buffer& dst, std::size_t offset, const void* src,
                         std::size_t bytes, bool blocking, Event* event);
  /// clEnqueueReadBuffer.
  ClStatus enqueue_read(const Buffer& src, std::size_t offset, void* dst,
                        std::size_t bytes, bool blocking, Event* event);
  /// clEnqueueNDRangeKernel with a 1D/2D/3D global size and local
  /// (work-group) size. Enforces kernel thread affinity.
  ClStatus enqueue_ndrange(Kernel& kernel, const Dim3& global,
                           const Dim3& local, Event* event);
  /// clFinish: drains the queue, returns the virtual completion time.
  Result<double> finish();

  [[nodiscard]] gpusim::Device* device() const { return device_; }
  /// Thread-local-ish detail of the last failure.
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  CommandQueue(gpusim::Machine* machine, gpusim::Device* device,
               gpusim::StreamId stream)
      : machine_(machine), device_(device), stream_(stream) {}
  gpusim::Machine* machine_;
  gpusim::Device* device_;
  gpusim::StreamId stream_;
  std::string last_error_;
};

// ---- template implementation -----------------------------------------------------

template <typename F>
Kernel Kernel::create(std::string name, F body) {
  Kernel k;
  k.impl_ = std::make_shared<Impl>();
  k.impl_->name = std::move(name);
  k.impl_->launch = [body = std::move(body)](
                        gpusim::Device& dev, const Dim3& global,
                        const Dim3& local,
                        gpusim::StreamId stream) mutable {
    // OpenCL expresses the grid as a *global* work size; convert to the
    // simulator's grid-of-blocks geometry (ceil-div per dimension).
    Dim3 grid{(global.x + local.x - 1) / local.x,
              (global.y + local.y - 1) / local.y,
              (global.z + local.z - 1) / local.z};
    return dev.launch(grid, local, gpusim::KernelAttributes{}, stream, body);
  };
  return k;
}

}  // namespace hs::oclx
