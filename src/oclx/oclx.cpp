#include "oclx/oclx.hpp"

namespace hs::oclx {

std::string_view status_name(ClStatus s) {
  switch (s) {
    case ClStatus::kSuccess: return "CL_SUCCESS";
    case ClStatus::kDeviceNotFound: return "CL_DEVICE_NOT_FOUND";
    case ClStatus::kInvalidValue: return "CL_INVALID_VALUE";
    case ClStatus::kInvalidContext: return "CL_INVALID_CONTEXT";
    case ClStatus::kInvalidCommandQueue: return "CL_INVALID_COMMAND_QUEUE";
    case ClStatus::kInvalidKernel: return "CL_INVALID_KERNEL";
    case ClStatus::kInvalidOperation: return "CL_INVALID_OPERATION";
    case ClStatus::kOutOfResources: return "CL_OUT_OF_RESOURCES";
    case ClStatus::kInvalidEventWaitList: return "CL_INVALID_EVENT_WAIT_LIST";
    case ClStatus::kDeviceNotAvailable: return "CL_DEVICE_NOT_AVAILABLE";
  }
  return "CL_UNKNOWN";
}

ClStatus cl_status_from(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kOk: return ClStatus::kSuccess;
    case ErrorCode::kOutOfMemory: return ClStatus::kOutOfResources;
    case ErrorCode::kUnavailable: return ClStatus::kDeviceNotAvailable;
    case ErrorCode::kInternal: return ClStatus::kOutOfResources;
    default: return ClStatus::kInvalidValue;
  }
}

ErrorCode error_code_of(ClStatus s) {
  switch (s) {
    case ClStatus::kSuccess: return ErrorCode::kOk;
    case ClStatus::kOutOfResources: return ErrorCode::kOutOfMemory;
    case ClStatus::kDeviceNotAvailable: return ErrorCode::kUnavailable;
    default: return ErrorCode::kInvalidArgument;
  }
}

// ---- Platform / DeviceId -----------------------------------------------------------

std::vector<Platform> Platform::get(gpusim::Machine* machine) {
  if (machine == nullptr || machine->device_count() == 0) return {};
  return {Platform(machine)};
}

std::vector<DeviceId> Platform::devices() const {
  std::vector<DeviceId> out;
  for (int i = 0; i < machine_->device_count(); ++i) {
    out.push_back(DeviceId(machine_, i));
  }
  return out;
}

DeviceId::DeviceId(gpusim::Machine* machine, int index)
    : machine_(machine), device_(&machine->device(index)) {}

std::string DeviceId::name() const { return device_->spec().name; }
std::uint64_t DeviceId::global_mem_size() const {
  return device_->spec().memory_bytes;
}
std::uint32_t DeviceId::max_compute_units() const {
  return device_->spec().sm_count;
}

// ---- Context ------------------------------------------------------------------------

Result<Context> Context::create(const std::vector<DeviceId>& devices) {
  if (devices.empty()) {
    return InvalidArgument("context requires at least one device");
  }
  for (const DeviceId& d : devices) {
    if (d.machine_ != devices.front().machine_) {
      return InvalidArgument("context devices span different machines");
    }
  }
  return Context(devices);
}

// ---- Event --------------------------------------------------------------------------

Result<double> Event::wait() const {
  if (!valid()) return FailedPrecondition("wait on null event");
  return op_.valid() ? machine_->finish_time(op_.task) : 0.0;
}

Result<double> Event::wait_for_events(const std::vector<Event>& events) {
  if (events.empty()) {
    return InvalidArgument("clWaitForEvents with empty wait list");
  }
  double t = 0;
  for (const Event& e : events) {
    auto r = e.wait();
    if (!r.ok()) return r.status();
    t = std::max(t, r.value());
  }
  return t;
}

// ---- Buffer -------------------------------------------------------------------------

Result<Buffer> Buffer::create(const Context& context, const DeviceId& device,
                              std::size_t bytes) {
  bool in_context = false;
  for (const DeviceId& d : context.devices()) {
    if (d.sim_device() == device.sim_device()) in_context = true;
  }
  if (!in_context) {
    return InvalidArgument("buffer device is not part of the context");
  }
  auto p = device.sim_device()->malloc(bytes);
  if (!p.ok()) return p.status();
  return Buffer(device.sim_device(), p.value(), bytes);
}

Buffer::Buffer(Buffer&& other) noexcept
    : device_(other.device_), ptr_(other.ptr_), bytes_(other.bytes_) {
  other.device_ = nullptr;
  other.ptr_ = nullptr;
  other.bytes_ = 0;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    if (device_ != nullptr && ptr_ != nullptr) {
      (void)device_->free(ptr_);
    }
    device_ = other.device_;
    ptr_ = other.ptr_;
    bytes_ = other.bytes_;
    other.device_ = nullptr;
    other.ptr_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

Buffer::~Buffer() {
  if (device_ != nullptr && ptr_ != nullptr) {
    (void)device_->free(ptr_);
  }
}

// ---- CommandQueue --------------------------------------------------------------------

Result<CommandQueue> CommandQueue::create(const Context& context,
                                          const DeviceId& device) {
  bool in_context = false;
  for (const DeviceId& d : context.devices()) {
    if (d.sim_device() == device.sim_device()) in_context = true;
  }
  if (!in_context) {
    return InvalidArgument("queue device is not part of the context");
  }
  gpusim::Device* dev = device.sim_device();
  return CommandQueue(device.machine_, dev, dev->create_stream());
}

ClStatus CommandQueue::enqueue_write(Buffer& dst, std::size_t offset,
                                     const void* src, std::size_t bytes,
                                     bool blocking, Event* event) {
  if (offset + bytes > dst.size()) {
    last_error_ = "write beyond buffer extent";
    return ClStatus::kInvalidValue;
  }
  if (dst.device() != device_) {
    last_error_ = "buffer resides on a different device than the queue";
    return ClStatus::kInvalidValue;
  }
  auto r = device_->memcpy_h2d(static_cast<std::uint8_t*>(dst.data()) + offset,
                               src, bytes, stream_, gpusim::HostMem::kPinned);
  if (!r.ok()) {
    last_error_ = r.status().ToString();
    return cl_status_from(r.status());
  }
  if (event != nullptr) *event = Event(machine_, r.value());
  if (blocking) (void)device_->sync_stream(stream_);
  return ClStatus::kSuccess;
}

ClStatus CommandQueue::enqueue_read(const Buffer& src, std::size_t offset,
                                    void* dst, std::size_t bytes,
                                    bool blocking, Event* event) {
  if (offset + bytes > src.size()) {
    last_error_ = "read beyond buffer extent";
    return ClStatus::kInvalidValue;
  }
  if (src.device() != device_) {
    last_error_ = "buffer resides on a different device than the queue";
    return ClStatus::kInvalidValue;
  }
  auto r = device_->memcpy_d2h(
      dst, static_cast<const std::uint8_t*>(src.data()) + offset, bytes,
      stream_, gpusim::HostMem::kPinned);
  if (!r.ok()) {
    last_error_ = r.status().ToString();
    return cl_status_from(r.status());
  }
  if (event != nullptr) *event = Event(machine_, r.value());
  if (blocking) (void)device_->sync_stream(stream_);
  return ClStatus::kSuccess;
}

ClStatus CommandQueue::enqueue_ndrange(Kernel& kernel, const Dim3& global,
                                       const Dim3& local, Event* event) {
  if (!kernel.impl_) {
    last_error_ = "null kernel";
    return ClStatus::kInvalidKernel;
  }
  // cl_kernel thread-affinity: the first enqueue claims the kernel for the
  // calling thread; any other thread must acquire() it explicitly first.
  std::thread::id none{};
  std::thread::id self = std::this_thread::get_id();
  std::thread::id owner = kernel.impl_->owner.load(std::memory_order_acquire);
  if (owner == none) {
    kernel.impl_->owner.compare_exchange_strong(none, self);
    owner = kernel.impl_->owner.load(std::memory_order_acquire);
  }
  if (owner != self) {
    last_error_ =
        "cl_kernel objects are not thread-safe: kernel '" +
        kernel.impl_->name +
        "' is owned by another thread (allocate one kernel per thread or "
        "stream item, as the paper does, or call acquire())";
    return ClStatus::kInvalidOperation;
  }
  if (local.count() == 0 || global.count() == 0) {
    last_error_ = "empty global or local size";
    return ClStatus::kInvalidValue;
  }
  auto r = kernel.impl_->launch(*device_, global, local, stream_);
  if (!r.ok()) {
    last_error_ = r.status().ToString();
    return cl_status_from(r.status());
  }
  if (event != nullptr) *event = Event(machine_, r.value());
  return ClStatus::kSuccess;
}

Result<double> CommandQueue::finish() { return device_->sync_stream(stream_); }

}  // namespace hs::oclx
