// Raw OpenCL-1.2-style C API over the oclx classes — the surface the
// paper's code actually programs against (clGetPlatformIDs ...
// clEnqueueNDRangeKernel ... clWaitForEvents), with opaque handle types
// and clRetain/clRelease reference counting.
//
// Deviations from real OpenCL, by necessity of the simulation:
//  * kernels are created from a C++ callable (clCreateKernelFromCallback)
//    instead of compiled source — there is no OpenCL C compiler here;
//  * buffers are allocated on the context's first device at creation
//    (real OpenCL migrates buffers lazily between context devices);
//    enqueues from queues on other devices fail with CL_INVALID_MEM_OBJECT.
// Everything else — discovery flow, in-order queues, events, the
// non-thread-safe cl_kernel — follows the standard's semantics.
#pragma once

#include <cstdint>
#include <functional>

#include "gpusim/device.hpp"

namespace hs::oclx::capi {

using cl_int = std::int32_t;
using cl_uint = std::uint32_t;
using cl_ulong = std::uint64_t;

// Error codes (values match the OpenCL headers).
inline constexpr cl_int CL_SUCCESS = 0;
inline constexpr cl_int CL_DEVICE_NOT_FOUND = -1;
inline constexpr cl_int CL_DEVICE_NOT_AVAILABLE = -2;
inline constexpr cl_int CL_OUT_OF_RESOURCES = -5;
inline constexpr cl_int CL_INVALID_VALUE = -30;
inline constexpr cl_int CL_INVALID_PLATFORM = -32;
inline constexpr cl_int CL_INVALID_DEVICE = -33;
inline constexpr cl_int CL_INVALID_CONTEXT = -34;
inline constexpr cl_int CL_INVALID_COMMAND_QUEUE = -36;
inline constexpr cl_int CL_INVALID_MEM_OBJECT = -38;
inline constexpr cl_int CL_INVALID_KERNEL = -48;
inline constexpr cl_int CL_INVALID_EVENT_WAIT_LIST = -57;
inline constexpr cl_int CL_INVALID_EVENT = -58;
inline constexpr cl_int CL_INVALID_OPERATION = -59;

// Device-info queries (subset).
inline constexpr cl_uint CL_DEVICE_NAME = 0x102B;
inline constexpr cl_uint CL_DEVICE_MAX_COMPUTE_UNITS = 0x1002;
inline constexpr cl_uint CL_DEVICE_GLOBAL_MEM_SIZE = 0x101F;

inline constexpr cl_uint CL_TRUE = 1;
inline constexpr cl_uint CL_FALSE = 0;

// Opaque handle types.
using cl_platform_id = struct _cl_platform_id*;
using cl_device_id = struct _cl_device_id*;
using cl_context = struct _cl_context*;
using cl_command_queue = struct _cl_command_queue*;
using cl_mem = struct _cl_mem*;
using cl_kernel = struct _cl_kernel*;
using cl_event = struct _cl_event*;

/// Binds the simulated machine behind the platform list (analogous to
/// installing an ICD). Pass nullptr to unbind.
void clSimBindMachine(gpusim::Machine* machine);

// --- discovery -------------------------------------------------------------
cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms);
cl_int clGetDeviceIDs(cl_platform_id platform, cl_uint num_entries,
                      cl_device_id* devices, cl_uint* num_devices);
cl_int clGetDeviceInfo(cl_device_id device, cl_uint param_name,
                       std::size_t param_value_size, void* param_value,
                       std::size_t* param_value_size_ret);

// --- context / queue ---------------------------------------------------------
cl_context clCreateContext(const cl_device_id* devices, cl_uint num_devices,
                           cl_int* errcode_ret);
cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_int* errcode_ret);

// --- memory -------------------------------------------------------------------
cl_mem clCreateBuffer(cl_context context, std::size_t size,
                      cl_int* errcode_ret);

// --- kernels --------------------------------------------------------------------
/// Simulation-specific kernel creation: `body` runs once per work-item
/// (may return an integral cost or void). Replaces clCreateProgram/
/// clBuildProgram/clCreateKernel.
cl_kernel clCreateKernelFromCallback(
    cl_context context, const char* name,
    std::function<std::uint64_t(const gpusim::ThreadCtx&)> body,
    cl_int* errcode_ret);

// --- enqueue ---------------------------------------------------------------------
cl_int clEnqueueWriteBuffer(cl_command_queue queue, cl_mem buffer,
                            cl_uint blocking_write, std::size_t offset,
                            std::size_t size, const void* ptr,
                            cl_event* event);
cl_int clEnqueueReadBuffer(cl_command_queue queue, cl_mem buffer,
                           cl_uint blocking_read, std::size_t offset,
                           std::size_t size, void* ptr, cl_event* event);
/// 1D NDRange (work_dim fixed at 1, as all of the paper's kernels are).
cl_int clEnqueueNDRangeKernel(cl_command_queue queue, cl_kernel kernel,
                              std::size_t global_work_size,
                              std::size_t local_work_size, cl_event* event);

// --- synchronization ----------------------------------------------------------------
cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list);
cl_int clFinish(cl_command_queue queue);

// --- retain/release ------------------------------------------------------------------
cl_int clRetainMemObject(cl_mem memobj);
cl_int clReleaseMemObject(cl_mem memobj);
cl_int clRetainKernel(cl_kernel kernel);
cl_int clReleaseKernel(cl_kernel kernel);
cl_int clRetainEvent(cl_event event);
cl_int clReleaseEvent(cl_event event);
cl_int clReleaseCommandQueue(cl_command_queue queue);
cl_int clReleaseContext(cl_context context);

/// Live handle count across all types (leak checking in tests).
std::size_t clSimLiveHandles();

}  // namespace hs::oclx::capi
