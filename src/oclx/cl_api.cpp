#include "oclx/cl_api.hpp"

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "oclx/oclx.hpp"

namespace hs::oclx::capi {

namespace {

// Handle bodies. Every handle is a heap object with an intrusive refcount;
// the opaque pointer is the object address cast to the handle type.
struct PlatformBody {
  gpusim::Machine* machine = nullptr;
};

struct DeviceBody {
  gpusim::Machine* machine = nullptr;
  int index = 0;
};

struct ContextBody {
  int refs = 1;  // guarded by registry().mu
  std::vector<DeviceBody*> devices;
  std::unique_ptr<Context> context;
};

struct QueueBody {
  int refs = 1;  // guarded by registry().mu
  ContextBody* context = nullptr;
  std::unique_ptr<CommandQueue> queue;
};

struct MemBody {
  int refs = 1;  // guarded by registry().mu
  ContextBody* context = nullptr;
  std::unique_ptr<Buffer> buffer;
};

struct KernelBody {
  int refs = 1;  // guarded by registry().mu
  Kernel kernel;  // oclx kernel (shared impl, thread-affinity enforced)
};

struct EventBody {
  int refs = 1;  // guarded by registry().mu
  Event event;
};

/// Global registry: the machine, the singleton platform/device bodies,
/// and a live-handle counter.
struct Registry {
  std::mutex mu;
  gpusim::Machine* machine = nullptr;
  PlatformBody platform;
  std::vector<std::unique_ptr<DeviceBody>> devices;
  std::atomic<std::size_t> live{0};
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

template <typename T>
T* alloc_handle(T&& proto) {
  registry().live.fetch_add(1, std::memory_order_relaxed);
  return new T(std::move(proto));
}

template <typename T>
void free_handle(T* body) {
  registry().live.fetch_sub(1, std::memory_order_relaxed);
  delete body;
}

template <typename Body>
cl_int release(Body* body) {
  if (body == nullptr) return CL_INVALID_VALUE;
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(registry().mu);
    dead = --body->refs == 0;
  }
  if (dead) free_handle(body);
  return CL_SUCCESS;
}

template <typename Body>
cl_int retain(Body* body) {
  if (body == nullptr) return CL_INVALID_VALUE;
  std::lock_guard<std::mutex> lock(registry().mu);
  ++body->refs;
  return CL_SUCCESS;
}

cl_int set_err(cl_int* out, cl_int code) {
  if (out != nullptr) *out = code;
  return code;
}

}  // namespace

void clSimBindMachine(gpusim::Machine* machine) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.machine = machine;
  r.platform.machine = machine;
  r.devices.clear();
  if (machine != nullptr) {
    for (int d = 0; d < machine->device_count(); ++d) {
      auto body = std::make_unique<DeviceBody>();
      body->machine = machine;
      body->index = d;
      r.devices.push_back(std::move(body));
    }
  }
}

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.machine == nullptr) {
    if (num_platforms != nullptr) *num_platforms = 0;
    return CL_DEVICE_NOT_FOUND;
  }
  if (num_platforms != nullptr) *num_platforms = 1;
  if (platforms != nullptr) {
    if (num_entries < 1) return CL_INVALID_VALUE;
    platforms[0] = reinterpret_cast<cl_platform_id>(&r.platform);
  }
  return CL_SUCCESS;
}

cl_int clGetDeviceIDs(cl_platform_id platform, cl_uint num_entries,
                      cl_device_id* devices, cl_uint* num_devices) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (reinterpret_cast<PlatformBody*>(platform) != &r.platform) {
    return CL_INVALID_PLATFORM;
  }
  cl_uint count = static_cast<cl_uint>(r.devices.size());
  if (num_devices != nullptr) *num_devices = count;
  if (devices != nullptr) {
    if (num_entries == 0) return CL_INVALID_VALUE;
    // As in real OpenCL, fewer entries than devices is fine: the caller
    // receives the first num_entries ids.
    cl_uint n = num_entries < count ? num_entries : count;
    for (cl_uint d = 0; d < n; ++d) {
      devices[d] = reinterpret_cast<cl_device_id>(r.devices[d].get());
    }
  }
  return count > 0 ? CL_SUCCESS : CL_DEVICE_NOT_FOUND;
}

cl_int clGetDeviceInfo(cl_device_id device, cl_uint param_name,
                       std::size_t param_value_size, void* param_value,
                       std::size_t* param_value_size_ret) {
  auto* body = reinterpret_cast<DeviceBody*>(device);
  if (body == nullptr || body->machine == nullptr) return CL_INVALID_DEVICE;
  const gpusim::DeviceSpec& spec =
      body->machine->device(body->index).spec();

  auto write_bytes = [&](const void* src, std::size_t n) -> cl_int {
    if (param_value_size_ret != nullptr) *param_value_size_ret = n;
    if (param_value != nullptr) {
      if (param_value_size < n) return CL_INVALID_VALUE;
      std::memcpy(param_value, src, n);
    }
    return CL_SUCCESS;
  };

  switch (param_name) {
    case CL_DEVICE_NAME:
      return write_bytes(spec.name.c_str(), spec.name.size() + 1);
    case CL_DEVICE_MAX_COMPUTE_UNITS: {
      cl_uint cus = spec.sm_count;
      return write_bytes(&cus, sizeof(cus));
    }
    case CL_DEVICE_GLOBAL_MEM_SIZE: {
      cl_ulong mem = spec.memory_bytes;
      return write_bytes(&mem, sizeof(mem));
    }
    default:
      return CL_INVALID_VALUE;
  }
}

cl_context clCreateContext(const cl_device_id* devices, cl_uint num_devices,
                           cl_int* errcode_ret) {
  if (devices == nullptr || num_devices == 0) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  std::vector<DeviceBody*> bodies;
  std::vector<DeviceId> ids;
  for (cl_uint d = 0; d < num_devices; ++d) {
    auto* body = reinterpret_cast<DeviceBody*>(devices[d]);
    if (body == nullptr || body->machine == nullptr) {
      set_err(errcode_ret, CL_INVALID_DEVICE);
      return nullptr;
    }
    bodies.push_back(body);
  }
  // Rebuild oclx DeviceIds through the platform.
  auto platforms = Platform::get(bodies[0]->machine);
  if (platforms.empty()) {
    set_err(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  auto all = platforms[0].devices();
  for (DeviceBody* body : bodies) {
    ids.push_back(all.at(static_cast<std::size_t>(body->index)));
  }
  auto ctx = Context::create(ids);
  if (!ctx.ok()) {
    set_err(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  ContextBody proto;
  proto.devices = std::move(bodies);
  proto.context = std::make_unique<Context>(std::move(ctx).value());
  set_err(errcode_ret, CL_SUCCESS);
  return reinterpret_cast<cl_context>(alloc_handle(std::move(proto)));
}

cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_int* errcode_ret) {
  auto* ctx = reinterpret_cast<ContextBody*>(context);
  auto* dev = reinterpret_cast<DeviceBody*>(device);
  if (ctx == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (dev == nullptr) {
    set_err(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  auto platforms = Platform::get(dev->machine);
  auto all = platforms[0].devices();
  auto q = CommandQueue::create(*ctx->context,
                                all.at(static_cast<std::size_t>(dev->index)));
  if (!q.ok()) {
    set_err(errcode_ret, CL_INVALID_DEVICE);
    return nullptr;
  }
  QueueBody proto;
  proto.context = ctx;
  proto.queue = std::make_unique<CommandQueue>(std::move(q).value());
  set_err(errcode_ret, CL_SUCCESS);
  return reinterpret_cast<cl_command_queue>(alloc_handle(std::move(proto)));
}

cl_mem clCreateBuffer(cl_context context, std::size_t size,
                      cl_int* errcode_ret) {
  auto* ctx = reinterpret_cast<ContextBody*>(context);
  if (ctx == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  // Allocate on the context's first device (documented deviation).
  auto buf = Buffer::create(*ctx->context, ctx->context->devices().front(),
                            size);
  if (!buf.ok()) {
    set_err(errcode_ret, buf.status().code() == ErrorCode::kUnavailable
                             ? CL_DEVICE_NOT_AVAILABLE
                             : CL_OUT_OF_RESOURCES);
    return nullptr;
  }
  MemBody proto;
  proto.context = ctx;
  proto.buffer = std::make_unique<Buffer>(std::move(buf).value());
  set_err(errcode_ret, CL_SUCCESS);
  return reinterpret_cast<cl_mem>(alloc_handle(std::move(proto)));
}

cl_kernel clCreateKernelFromCallback(
    cl_context context, const char* name,
    std::function<std::uint64_t(const gpusim::ThreadCtx&)> body,
    cl_int* errcode_ret) {
  auto* ctx = reinterpret_cast<ContextBody*>(context);
  if (ctx == nullptr) {
    set_err(errcode_ret, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (name == nullptr || !body) {
    set_err(errcode_ret, CL_INVALID_VALUE);
    return nullptr;
  }
  KernelBody proto;
  proto.kernel = Kernel::create(
      name, [body = std::move(body)](const ThreadCtx& tc) -> std::uint64_t {
        return body(tc);
      });
  set_err(errcode_ret, CL_SUCCESS);
  return reinterpret_cast<cl_kernel>(alloc_handle(std::move(proto)));
}

namespace {

cl_int map_status(ClStatus status) {
  switch (status) {
    case ClStatus::kSuccess: return CL_SUCCESS;
    case ClStatus::kDeviceNotFound: return CL_DEVICE_NOT_FOUND;
    case ClStatus::kInvalidValue: return CL_INVALID_VALUE;
    case ClStatus::kInvalidContext: return CL_INVALID_CONTEXT;
    case ClStatus::kInvalidCommandQueue: return CL_INVALID_COMMAND_QUEUE;
    case ClStatus::kInvalidKernel: return CL_INVALID_KERNEL;
    case ClStatus::kInvalidOperation: return CL_INVALID_OPERATION;
    case ClStatus::kOutOfResources: return CL_OUT_OF_RESOURCES;
    case ClStatus::kInvalidEventWaitList: return CL_INVALID_EVENT_WAIT_LIST;
    case ClStatus::kDeviceNotAvailable: return CL_DEVICE_NOT_AVAILABLE;
  }
  return CL_INVALID_VALUE;
}

cl_int store_event(cl_event* out, const Event& event) {
  if (out == nullptr) return CL_SUCCESS;
  EventBody proto;
  proto.event = event;
  *out = reinterpret_cast<cl_event>(alloc_handle(std::move(proto)));
  return CL_SUCCESS;
}

}  // namespace

cl_int clEnqueueWriteBuffer(cl_command_queue queue, cl_mem buffer,
                            cl_uint blocking_write, std::size_t offset,
                            std::size_t size, const void* ptr,
                            cl_event* event) {
  auto* q = reinterpret_cast<QueueBody*>(queue);
  auto* m = reinterpret_cast<MemBody*>(buffer);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  if (m->buffer->device() != q->queue->device()) return CL_INVALID_MEM_OBJECT;
  Event ev;
  ClStatus s = q->queue->enqueue_write(*m->buffer, offset, ptr, size,
                                       blocking_write == CL_TRUE, &ev);
  if (s != ClStatus::kSuccess) return map_status(s);
  return store_event(event, ev);
}

cl_int clEnqueueReadBuffer(cl_command_queue queue, cl_mem buffer,
                           cl_uint blocking_read, std::size_t offset,
                           std::size_t size, void* ptr, cl_event* event) {
  auto* q = reinterpret_cast<QueueBody*>(queue);
  auto* m = reinterpret_cast<MemBody*>(buffer);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  if (m->buffer->device() != q->queue->device()) return CL_INVALID_MEM_OBJECT;
  Event ev;
  ClStatus s = q->queue->enqueue_read(*m->buffer, offset, ptr, size,
                                      blocking_read == CL_TRUE, &ev);
  if (s != ClStatus::kSuccess) return map_status(s);
  return store_event(event, ev);
}

cl_int clEnqueueNDRangeKernel(cl_command_queue queue, cl_kernel kernel,
                              std::size_t global_work_size,
                              std::size_t local_work_size, cl_event* event) {
  auto* q = reinterpret_cast<QueueBody*>(queue);
  auto* k = reinterpret_cast<KernelBody*>(kernel);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (k == nullptr) return CL_INVALID_KERNEL;
  if (local_work_size == 0 || global_work_size == 0) return CL_INVALID_VALUE;
  Event ev;
  ClStatus s = q->queue->enqueue_ndrange(
      k->kernel,
      Dim3{static_cast<std::uint32_t>(global_work_size), 1, 1},
      Dim3{static_cast<std::uint32_t>(local_work_size), 1, 1}, &ev);
  if (s != ClStatus::kSuccess) return map_status(s);
  return store_event(event, ev);
}

cl_int clWaitForEvents(cl_uint num_events, const cl_event* event_list) {
  if (num_events == 0 || event_list == nullptr) {
    return CL_INVALID_EVENT_WAIT_LIST;
  }
  std::vector<Event> events;
  events.reserve(num_events);
  for (cl_uint i = 0; i < num_events; ++i) {
    auto* e = reinterpret_cast<EventBody*>(event_list[i]);
    if (e == nullptr) return CL_INVALID_EVENT;
    events.push_back(e->event);
  }
  return Event::wait_for_events(events).ok() ? CL_SUCCESS : CL_INVALID_EVENT;
}

cl_int clFinish(cl_command_queue queue) {
  auto* q = reinterpret_cast<QueueBody*>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  return q->queue->finish().ok() ? CL_SUCCESS : CL_INVALID_COMMAND_QUEUE;
}

cl_int clRetainMemObject(cl_mem memobj) {
  return retain(reinterpret_cast<MemBody*>(memobj));
}
cl_int clReleaseMemObject(cl_mem memobj) {
  return release(reinterpret_cast<MemBody*>(memobj));
}
cl_int clRetainKernel(cl_kernel kernel) {
  return retain(reinterpret_cast<KernelBody*>(kernel));
}
cl_int clReleaseKernel(cl_kernel kernel) {
  return release(reinterpret_cast<KernelBody*>(kernel));
}
cl_int clRetainEvent(cl_event event) {
  return retain(reinterpret_cast<EventBody*>(event));
}
cl_int clReleaseEvent(cl_event event) {
  return release(reinterpret_cast<EventBody*>(event));
}
cl_int clReleaseCommandQueue(cl_command_queue queue) {
  return release(reinterpret_cast<QueueBody*>(queue));
}
cl_int clReleaseContext(cl_context context) {
  return release(reinterpret_cast<ContextBody*>(context));
}

std::size_t clSimLiveHandles() {
  return registry().live.load(std::memory_order_relaxed);
}

}  // namespace hs::oclx::capi
