#include "lzssapp/lzss_stream.hpp"

#include <cstring>
#include <optional>

#include "cudax/cudax.hpp"
#include "kernels/sha1.hpp"
#include "spar/spar.hpp"

namespace hs::lzssapp {

namespace {

constexpr char kMagic[8] = {'H', 'S', 'L', 'Z', 'S', 'S', '0', '1'};

struct Block {
  std::uint64_t index = 0;
  std::vector<std::uint8_t> raw;
  std::vector<std::uint8_t> compressed;
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Ordered container writer shared by all variants.
class Writer {
 public:
  explicit Writer(const LzssStreamConfig& config) {
    // (push_back loop: GCC 12 -Wstringop-overflow false positive)
    for (char ch : kMagic) out_.push_back(static_cast<std::uint8_t>(ch));
    put_u32(out_, config.block_size);
    put_u32(out_, config.lzss.window_size);
    put_u32(out_, config.lzss.min_match);
    put_u64(out_, 0);  // original size, patched
    put_u64(out_, 0);  // block count, patched
  }

  Status append(const Block& block) {
    if (block.index != next_index_) {
      return FailedPrecondition("blocks out of order");
    }
    ++next_index_;
    put_u32(out_, static_cast<std::uint32_t>(block.raw.size()));
    put_u32(out_, static_cast<std::uint32_t>(block.compressed.size()));
    out_.insert(out_.end(), block.compressed.begin(), block.compressed.end());
    original_ += block.raw.size();
    return OkStatus();
  }

  std::vector<std::uint8_t> finish(const kernels::Sha1Digest& digest) {
    for (int i = 0; i < 8; ++i) {
      out_[20 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(original_ >> (8 * i));
      out_[28 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(next_index_ >> (8 * i));
    }
    out_.insert(out_.end(), digest.begin(), digest.end());
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t next_index_ = 0;
  std::uint64_t original_ = 0;
};

std::function<std::optional<Block>()> block_source(
    std::span<const std::uint8_t> input, const LzssStreamConfig& config) {
  return [input, bs = std::max<std::uint32_t>(1, config.block_size),
          offset = std::size_t{0}, index = std::uint64_t{0}]() mutable
             -> std::optional<Block> {
    if (offset >= input.size()) return std::nullopt;
    std::size_t n = std::min<std::size_t>(bs, input.size() - offset);
    Block block;
    block.index = index++;
    block.raw.assign(input.begin() + static_cast<long>(offset),
                     input.begin() + static_cast<long>(offset + n));
    offset += n;
    return block;
  };
}

void compress_block_cpu(Block& block, const LzssStreamConfig& config) {
  block.compressed = kernels::lzss_encode(block.raw, config.lzss);
}

}  // namespace

Result<std::vector<std::uint8_t>> compress_sequential(
    std::span<const std::uint8_t> input, const LzssStreamConfig& config) {
  if (!config.lzss.valid()) return InvalidArgument("bad LZSS parameters");
  Writer writer(config);
  auto source = block_source(input, config);
  while (auto block = source()) {
    compress_block_cpu(*block, config);
    if (Status s = writer.append(*block); !s.ok()) return s;
  }
  return writer.finish(kernels::Sha1::hash(input));
}

Result<std::vector<std::uint8_t>> compress_spar(
    std::span<const std::uint8_t> input, const LzssStreamConfig& config,
    int replicas) {
  if (!config.lzss.valid()) return InvalidArgument("bad LZSS parameters");
  Writer writer(config);
  Status append_status;
  spar::ToStream region("lzss-stream");
  region.source<Block>(block_source(input, config));
  region.stage<Block, Block>(spar::Replicate(replicas),
                             [config](Block block) {
                               compress_block_cpu(block, config);
                               return block;
                             });
  region.last_stage<Block>([&](Block block) {
    Status s = writer.append(block);
    if (!s.ok() && append_status.ok()) append_status = s;
  });
  if (Status s = region.run(); !s.ok()) return s;
  if (!append_status.ok()) return append_status;
  return writer.finish(kernels::Sha1::hash(input));
}

namespace {

/// GPU worker of the [24] structure: FindMatch on the device (one thread
/// per position), encode walk on the CPU.
class CudaLzssWorker final : public flow::Node {
 public:
  CudaLzssWorker(gpusim::Machine* machine, const LzssStreamConfig& config)
      : machine_(machine), config_(config) {}

  void on_init(int replica_id) override {
    device_ = replica_id % machine_->device_count();
    if (cudax::cudaSetDevice(device_) != cudax::cudaError::cudaSuccess ||
        cudax::cudaStreamCreate(&stream_) != cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("CUDA worker init failed");
    }
  }

  flow::SvcResult svc(flow::Item in) override {
    Block block = in.take<Block>();
    const std::size_t n = block.raw.size();
    if (n == 0) {
      return flow::SvcResult::Out(flow::Item::of<Block>(std::move(block)));
    }
    (void)cudax::cudaSetDevice(device_);
    ensure_capacity(n);
    if (cudax::cudaMemcpyAsync(dev_data_, block.raw.data(), n,
                               cudax::cudaMemcpyKind::cudaMemcpyHostToDevice,
                               stream_) != cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("h2d failed");
    }
    auto* dev_data = static_cast<const std::uint8_t*>(dev_data_);
    auto* dev_matches = static_cast<kernels::LzssMatch*>(dev_matches_);
    const kernels::LzssParams lzss = config_.lzss;
    auto e = cudax::launch_kernel(
        cudax::Dim3{static_cast<std::uint32_t>((n + 255) / 256), 1, 1},
        cudax::Dim3{256, 1, 1}, stream_,
        [dev_data, dev_matches, n, lzss](const cudax::ThreadCtx& ctx)
            -> std::uint64_t {
          std::uint64_t pos = ctx.global_x();
          if (pos >= n) return 1;
          dev_matches[pos] = kernels::lzss_longest_match(
              std::span<const std::uint8_t>(dev_data, n), 0, n, pos, lzss);
          return kernels::lzss_match_cost(0, pos, lzss);
        });
    if (e != cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("FindMatch launch failed: " +
                               cudax::last_error_message());
    }
    std::vector<kernels::LzssMatch> matches(n);
    if (cudax::cudaMemcpyAsync(matches.data(), dev_matches_,
                               n * sizeof(kernels::LzssMatch),
                               cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost,
                               stream_) != cudax::cudaError::cudaSuccess ||
        cudax::cudaStreamSynchronize(stream_) !=
            cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("d2h failed");
    }
    block.compressed = kernels::lzss_encode_from_matches(
        block.raw, 0, n, matches, config_.lzss);
    return flow::SvcResult::Out(flow::Item::of<Block>(std::move(block)));
  }

  void on_end() override {
    (void)cudax::cudaSetDevice(device_);
    if (dev_data_ != nullptr) (void)cudax::cudaFree(dev_data_);
    if (dev_matches_ != nullptr) (void)cudax::cudaFree(dev_matches_);
  }

 private:
  void ensure_capacity(std::size_t n) {
    if (n <= capacity_) return;
    if (dev_data_ != nullptr) (void)cudax::cudaFree(dev_data_);
    if (dev_matches_ != nullptr) (void)cudax::cudaFree(dev_matches_);
    if (cudax::cudaMalloc(&dev_data_, n) != cudax::cudaError::cudaSuccess ||
        cudax::cudaMalloc(&dev_matches_, n * sizeof(kernels::LzssMatch)) !=
            cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("device allocation failed");
    }
    capacity_ = n;
  }

  gpusim::Machine* machine_;
  LzssStreamConfig config_;
  int device_ = 0;
  cudax::cudaStream_t stream_{};
  void* dev_data_ = nullptr;
  void* dev_matches_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace

Result<std::vector<std::uint8_t>> compress_spar_cuda(
    std::span<const std::uint8_t> input, const LzssStreamConfig& config,
    int replicas, gpusim::Machine& machine) {
  if (!config.lzss.valid()) return InvalidArgument("bad LZSS parameters");
  if (machine.device_count() == 0) {
    return InvalidArgument("machine has no devices");
  }
  Writer writer(config);
  Status append_status;
  spar::ToStream region("lzss-stream-cuda");
  region.source<Block>(block_source(input, config));
  region.stage_nodes(spar::Replicate(replicas), [&machine, config] {
    return std::make_unique<CudaLzssWorker>(&machine, config);
  });
  region.last_stage<Block>([&](Block block) {
    Status s = writer.append(block);
    if (!s.ok() && append_status.ok()) append_status = s;
  });
  if (Status s = region.run(); !s.ok()) return s;
  if (!append_status.ok()) return append_status;
  return writer.finish(kernels::Sha1::hash(input));
}

namespace {

/// Bounds-checked little-endian reader (container parsing).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool bytes(std::size_t n, std::span<const std::uint8_t>& out) {
    if (pos_ + n > data_.size()) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

struct ParsedHeader {
  kernels::LzssParams lzss;
  std::uint64_t original_size = 0;
  std::uint64_t block_count = 0;
};

Result<ParsedHeader> parse_header(Reader& r) {
  std::span<const std::uint8_t> magic;
  if (!r.bytes(8, magic) || std::memcmp(magic.data(), kMagic, 8) != 0) {
    return DataLoss("bad LZSS container magic");
  }
  ParsedHeader hdr;
  std::uint32_t block_size = 0, window = 0, min_match = 0;
  if (!r.u32(block_size) || !r.u32(window) || !r.u32(min_match) ||
      !r.u64(hdr.original_size) || !r.u64(hdr.block_count)) {
    return DataLoss("truncated LZSS container header");
  }
  hdr.lzss.window_size = window;
  hdr.lzss.min_match = min_match;
  hdr.lzss.max_match = min_match + 15;
  if (!hdr.lzss.valid()) return DataLoss("invalid LZSS parameters");
  return hdr;
}

}  // namespace

Result<std::vector<std::uint8_t>> decompress(
    std::span<const std::uint8_t> archive) {
  Reader r(archive);
  auto hdr = parse_header(r);
  if (!hdr.ok()) return hdr.status();

  std::vector<std::uint8_t> out;
  out.reserve(hdr.value().original_size);
  for (std::uint64_t b = 0; b < hdr.value().block_count; ++b) {
    std::uint32_t raw_len = 0, comp_len = 0;
    std::span<const std::uint8_t> payload;
    if (!r.u32(raw_len) || !r.u32(comp_len) || !r.bytes(comp_len, payload)) {
      return DataLoss("truncated LZSS container block");
    }
    auto block = kernels::lzss_decode(payload, raw_len, hdr.value().lzss);
    if (!block.ok()) return block.status();
    out.insert(out.end(), block.value().begin(), block.value().end());
  }
  if (out.size() != hdr.value().original_size) {
    return DataLoss("decoded size mismatch");
  }
  std::span<const std::uint8_t> trailer;
  if (!r.bytes(20, trailer)) return DataLoss("missing integrity trailer");
  kernels::Sha1Digest expect{};
  std::memcpy(expect.data(), trailer.data(), 20);
  if (kernels::Sha1::hash(out) != expect) {
    return DataLoss("integrity check failed: SHA-1 mismatch");
  }
  return out;
}

Result<LzssStreamInfo> inspect(std::span<const std::uint8_t> archive) {
  Reader r(archive);
  auto hdr = parse_header(r);
  if (!hdr.ok()) return hdr.status();
  LzssStreamInfo info;
  info.original_size = hdr.value().original_size;
  info.block_count = hdr.value().block_count;
  for (std::uint64_t b = 0; b < hdr.value().block_count; ++b) {
    std::uint32_t raw_len = 0, comp_len = 0;
    std::span<const std::uint8_t> payload;
    if (!r.u32(raw_len) || !r.u32(comp_len) || !r.bytes(comp_len, payload)) {
      return DataLoss("truncated LZSS container block");
    }
    info.compressed_payload += comp_len;
  }
  return info;
}

}  // namespace hs::lzssapp
