// Streaming LZSS compressor — the application of the paper's reference
// [24] ("Stream Parallelism on the LZSS Data Compression Application for
// Multi-Cores with GPUs"), which §IV-B integrates into Dedup. Standalone
// form: the input is cut into fixed-size blocks (stream items); a
// replicated stage compresses each block (CPU directly, or GPU FindMatch +
// CPU encode walk, exactly the split of Listing 3); an ordered writer
// emits the container.
//
// Container layout (little-endian):
//   header : magic "HSLZSS01" | u32 block_size | u32 lzss_window |
//            u32 lzss_min_match | u64 original_size | u64 block_count
//   block  : u32 raw_len | u32 comp_len | payload
//   trailer: u8[20] SHA-1 of the original input
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "gpusim/device.hpp"
#include "kernels/lzss.hpp"

namespace hs::lzssapp {

struct LzssStreamConfig {
  std::uint32_t block_size = 64 * 1024;
  kernels::LzssParams lzss;

  LzssStreamConfig() { lzss.window_size = 256; }
};

/// Sequential reference.
Result<std::vector<std::uint8_t>> compress_sequential(
    std::span<const std::uint8_t> input, const LzssStreamConfig& config);

/// SPar pipeline: source -> farm(LZSS) -> ordered writer.
Result<std::vector<std::uint8_t>> compress_spar(
    std::span<const std::uint8_t> input, const LzssStreamConfig& config,
    int replicas);

/// SPar + CUDA-shim pipeline: the farm workers offload FindMatch to the
/// simulated GPUs (one thread per input position) and run the encode walk
/// on the CPU — the [24] structure. `machine` must be bound to cudax.
Result<std::vector<std::uint8_t>> compress_spar_cuda(
    std::span<const std::uint8_t> input, const LzssStreamConfig& config,
    int replicas, gpusim::Machine& machine);

/// Decompresses a container, verifying structure and the SHA-1 trailer.
Result<std::vector<std::uint8_t>> decompress(
    std::span<const std::uint8_t> archive);

struct LzssStreamInfo {
  std::uint64_t original_size = 0;
  std::uint64_t block_count = 0;
  std::uint64_t compressed_payload = 0;
};

Result<LzssStreamInfo> inspect(std::span<const std::uint8_t> archive);

}  // namespace hs::lzssapp
