// hs::sched — adaptive heterogeneous scheduling.
//
// The paper's GPU results encode two hand-tuned constants: 32-line mandel
// batches (Fig. 1, chosen because ~31 lines fill a Titan XP at dim=2000)
// and the 1 MB dedup batch OpenCL fell back to when 10 MB batches exhausted
// device memory (§V-B). Fig. 4 also shows the single-threaded GPU versions
// *losing* throughput when a second GPU is added — static round-robin
// assignment keeps feeding a device that is already behind.
//
// This module replaces both constants and the static assignment with
// feedback loops:
//
//   DeviceLoadTracker — per-device in-flight counts plus an EWMA of observed
//     service time. Workers ask it for the least-loaded live device instead
//     of binding to `replica_id % devices`; an idle device steals work from
//     a loaded one, and a lost device (fault injection) is excluded so its
//     queue drains through the stealing path.
//
//   AimdBatchSizer — slow-start growth (double while measured per-element
//     cost keeps improving) recovers the occupancy break-even that made the
//     paper pick 32 lines; a memory rejection (gpusim::Device::malloc
//     failing OUT_OF_MEMORY) triggers multiplicative decrease and converts
//     growth to additive probing below the rejected size, converging just
//     under the device memory ceiling instead of falling back to a
//     hardcoded 1 MB.
//
// Decisions are observable: pick/steal/grow/shrink counters and per-device
// inflight/EWMA gauges can be bound to a telemetry::Registry, and steals
// emit "sched.steal" trace spans.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hs::telemetry {
class Registry;
class Counter;
class Gauge;
}  // namespace hs::telemetry

namespace hs::sched {

/// Scheduling mode selected by the benches' --sched= flag. kStatic keeps
/// the historical behavior (per-replica device binding, fixed batch sizes)
/// bit-for-bit; kAdaptive enables the feedback loops in this module.
enum class SchedMode { kStatic, kAdaptive };

[[nodiscard]] Result<SchedMode> parse_sched_mode(std::string_view text);
[[nodiscard]] const char* to_string(SchedMode mode);

/// Per-device view returned by DeviceLoadTracker::snapshot().
struct DeviceSnapshot {
  int inflight = 0;
  double ewma_seconds = 0.0;  // 0 until the first completion
  std::uint64_t completed = 0;
  bool excluded = false;
};

/// Tracks in-flight work and observed service time per device and picks the
/// least-loaded live device. Thread-safe: the functional pipelines call it
/// from every farm worker. The hot path is one mutex acquisition per item —
/// items here are batch-of-blocks or line renders (micro- to milliseconds),
/// so a mutex is cheaper than getting lock-free bookkeeping wrong.
class DeviceLoadTracker {
 public:
  /// `ewma_alpha` weights the newest observation; 0.25 ~ averaging the last
  /// few batches, enough to follow a device that slows down (contention,
  /// fault retries) without thrashing on noise.
  explicit DeviceLoadTracker(int devices, double ewma_alpha = 0.25);

  [[nodiscard]] int device_count() const {
    return static_cast<int>(devices_.size());
  }

  /// Least-loaded pick: minimizes (inflight + 1) * ewma over live devices
  /// (an unmeasured device scores 0 so every device gets primed once; ties
  /// break to the lowest index). Registers one in-flight unit on the winner.
  /// Returns -1 when every device is excluded.
  int acquire();

  /// Sticky variant for workers that keep per-device scratch: returns
  /// `current` unless it is excluded (forced migration) or another live
  /// device is idle while `current` already has work in flight — then the
  /// idle device steals the item. Registers in-flight on the winner; counts
  /// a steal when the result differs from a live `current`.
  int acquire_preferring(int current);

  /// Completion: drops the in-flight unit and folds `service_seconds` into
  /// the device's EWMA.
  void release(int device, double service_seconds);

  /// Drops the in-flight unit without a service observation (the attempt
  /// failed; do not poison the EWMA with a retry storm's latency).
  void abandon(int device);

  /// Moves one in-flight unit from `from` to `to` — a worker migrated an
  /// item off a lost device mid-service.
  void transfer(int from, int to);

  /// Marks a device lost: never picked again, pending releases still
  /// accepted. Idempotent.
  void exclude(int device);
  [[nodiscard]] bool is_excluded(int device) const;

  [[nodiscard]] DeviceSnapshot snapshot(int device) const;
  [[nodiscard]] std::uint64_t picks() const;
  [[nodiscard]] std::uint64_t steals() const;

  /// Publishes decisions to `registry` under `prefix`: counters
  /// `<prefix>.picks` / `<prefix>.steals`, per-device gauges
  /// `<prefix>.d<N>.inflight` / `<prefix>.d<N>.ewma_ms` and counters
  /// `<prefix>.d<N>.items`. Pass nullptr to detach.
  void bind_metrics(telemetry::Registry* registry, std::string_view prefix);

 private:
  struct PerDevice {
    int inflight = 0;
    double ewma_seconds = 0.0;
    std::uint64_t completed = 0;
    bool excluded = false;
    telemetry::Gauge* inflight_gauge = nullptr;
    telemetry::Gauge* ewma_gauge = nullptr;
    telemetry::Counter* items = nullptr;
  };

  int pick_locked(int preferred);
  void publish_locked(int device);

  mutable std::mutex mu_;
  std::vector<PerDevice> devices_;
  double alpha_;
  std::uint64_t picks_ = 0;
  std::uint64_t steals_ = 0;
  telemetry::Counter* picks_counter_ = nullptr;
  telemetry::Counter* steals_counter_ = nullptr;
};

/// Configuration for AimdBatchSizer. Sizes are in caller units — lines for
/// the mandel pipelines, bytes for dedup batches.
struct AimdConfig {
  std::uint64_t min_size = 1;
  std::uint64_t max_size = std::uint64_t{1} << 62;  // hard cap from the caller
  std::uint64_t initial = 1;
  /// Additive step used once a memory rejection ends slow-start. Keep it at
  /// the workload's natural granularity (1 line, 64 kB of blocks, ...).
  std::uint64_t add_step = 1;
  /// Slow-start keeps doubling while per-element cost improves by more than
  /// this fraction; below it the curve has flattened (device full).
  double improve_eps = 0.02;
  /// Step back to the previous size before converging when a doubling makes
  /// per-element cost strictly worse (by > improve_eps). Enable only when
  /// elements are homogeneous (dedup's fixed-size batches); with
  /// position-dependent element costs (mandel lines near the set) a
  /// regression usually means the larger batch hit expensive elements, not
  /// that the size is wrong, so the default holds at the last size instead.
  bool backoff_on_regress = false;
};

/// Additive-increase/multiplicative-decrease batch sizing with a slow-start
/// ramp, driven by two signals: measured per-element cost (on_success) and
/// device memory rejections (on_reject). Deterministic: the same sequence
/// of observations yields the same sizes, so modeled runs stay reproducible.
///
/// Not thread-safe; each modeled run or pipeline owns one instance (guard it
/// yourself if workers share it).
class AimdBatchSizer {
 public:
  explicit AimdBatchSizer(AimdConfig cfg);

  [[nodiscard]] std::uint64_t current() const { return current_; }
  [[nodiscard]] bool converged() const { return converged_; }

  /// Largest size currently believed to fit: cfg.max_size until a rejection
  /// refines it downward.
  [[nodiscard]] std::uint64_t limit() const { return limit_; }

  /// A batch of current() elements completed at `unit_cost` per element
  /// (any consistent unit — modeled seconds, wall seconds). Slow-start:
  /// double while cost improves by > improve_eps, else hold (converged);
  /// with backoff_on_regress, a doubling that made cost strictly worse
  /// steps back to the previous size before converging. After a rejection:
  /// additive growth toward limit().
  void on_success(double unit_cost);

  /// current() did not fit in device memory. Multiplicative decrease (halve)
  /// and refine limit() to just below the rejected size; future growth is
  /// additive. Each distinct rejection lowers limit() by at least add_step,
  /// so probing terminates.
  void on_reject();

  [[nodiscard]] std::uint64_t grows() const { return grows_; }
  [[nodiscard]] std::uint64_t shrinks() const { return shrinks_; }
  [[nodiscard]] std::uint64_t rejects() const { return rejects_; }
  [[nodiscard]] std::uint64_t observations() const { return observations_; }

 private:
  void clamp_to_limit();

  AimdConfig cfg_;
  std::uint64_t current_;
  std::uint64_t limit_;
  double best_unit_cost_ = -1.0;  // <0: no observation yet
  bool slow_start_ = true;
  bool converged_ = false;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t observations_ = 0;
};

}  // namespace hs::sched
