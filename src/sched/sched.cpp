#include "sched/sched.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/span_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::sched {

Result<SchedMode> parse_sched_mode(std::string_view text) {
  if (text == "static") return SchedMode::kStatic;
  if (text == "adaptive") return SchedMode::kAdaptive;
  return InvalidArgument("--sched=" + std::string(text) +
                         ": expected 'static' or 'adaptive'");
}

const char* to_string(SchedMode mode) {
  return mode == SchedMode::kStatic ? "static" : "adaptive";
}

// ---- DeviceLoadTracker ------------------------------------------------------

DeviceLoadTracker::DeviceLoadTracker(int devices, double ewma_alpha)
    : devices_(static_cast<std::size_t>(std::max(devices, 1))),
      alpha_(std::clamp(ewma_alpha, 0.01, 1.0)) {}

int DeviceLoadTracker::pick_locked(int preferred) {
  // Score = expected wait if one more unit lands on the device. A device we
  // have never measured scores 0: it gets primed before the EWMA can bias
  // selection toward the first device that happened to finish. Equal scores
  // (e.g. several unmeasured devices) break on in-flight count so initial
  // work spreads instead of piling onto device 0, then on `preferred`, then
  // on the lowest index.
  int best = -1;
  double best_score = 0.0;
  int best_inflight = 0;
  for (int d = 0; d < device_count(); ++d) {
    const PerDevice& dev = devices_[static_cast<std::size_t>(d)];
    if (dev.excluded) continue;
    double score = (dev.inflight + 1) * dev.ewma_seconds;
    bool better = best < 0 || score < best_score ||
                  (score == best_score &&
                   (dev.inflight < best_inflight ||
                    (dev.inflight == best_inflight && d == preferred)));
    if (better) {
      best = d;
      best_score = score;
      best_inflight = dev.inflight;
    }
  }
  return best;
}

void DeviceLoadTracker::publish_locked(int device) {
  PerDevice& dev = devices_[static_cast<std::size_t>(device)];
  if (dev.inflight_gauge != nullptr) {
    dev.inflight_gauge->set(static_cast<double>(dev.inflight));
  }
  if (dev.ewma_gauge != nullptr) dev.ewma_gauge->set(dev.ewma_seconds * 1e3);
}

int DeviceLoadTracker::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  int d = pick_locked(/*preferred=*/-1);
  if (d < 0) return -1;
  ++picks_;
  if (picks_counter_ != nullptr) picks_counter_->add();
  ++devices_[static_cast<std::size_t>(d)].inflight;
  publish_locked(d);
  return d;
}

int DeviceLoadTracker::acquire_preferring(int current) {
  bool stole = false;
  int chosen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool current_live = current >= 0 && current < device_count() &&
                              !devices_[static_cast<std::size_t>(current)]
                                   .excluded;
    chosen = current_live ? current : pick_locked(current);
    if (current_live &&
        devices_[static_cast<std::size_t>(current)].inflight > 0) {
      // Current device already has work in flight; hand the item to an idle
      // live device if one exists (idle-device work stealing).
      for (int d = 0; d < device_count(); ++d) {
        const PerDevice& dev = devices_[static_cast<std::size_t>(d)];
        if (d != current && !dev.excluded && dev.inflight == 0) {
          chosen = d;
          break;
        }
      }
    }
    if (chosen < 0) return -1;
    ++picks_;
    if (picks_counter_ != nullptr) picks_counter_->add();
    stole = current_live && chosen != current;
    if (stole) {
      ++steals_;
      if (steals_counter_ != nullptr) steals_counter_->add();
    }
    ++devices_[static_cast<std::size_t>(chosen)].inflight;
    publish_locked(chosen);
  }
  if (stole && telemetry::enabled()) {
    telemetry::ScopedSpan span(telemetry::tracer(), "sched.steal");
  }
  return chosen;
}

void DeviceLoadTracker::release(int device, double service_seconds) {
  if (device < 0 || device >= device_count()) return;
  std::lock_guard<std::mutex> lock(mu_);
  PerDevice& dev = devices_[static_cast<std::size_t>(device)];
  dev.inflight = std::max(dev.inflight - 1, 0);
  ++dev.completed;
  dev.ewma_seconds = dev.ewma_seconds <= 0.0
                         ? service_seconds
                         : alpha_ * service_seconds +
                               (1.0 - alpha_) * dev.ewma_seconds;
  if (dev.items != nullptr) dev.items->add();
  publish_locked(device);
}

void DeviceLoadTracker::abandon(int device) {
  if (device < 0 || device >= device_count()) return;
  std::lock_guard<std::mutex> lock(mu_);
  PerDevice& dev = devices_[static_cast<std::size_t>(device)];
  dev.inflight = std::max(dev.inflight - 1, 0);
  publish_locked(device);
}

void DeviceLoadTracker::transfer(int from, int to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= 0 && from < device_count()) {
    PerDevice& dev = devices_[static_cast<std::size_t>(from)];
    dev.inflight = std::max(dev.inflight - 1, 0);
    publish_locked(from);
  }
  if (to >= 0 && to < device_count()) {
    ++devices_[static_cast<std::size_t>(to)].inflight;
    publish_locked(to);
  }
}

void DeviceLoadTracker::exclude(int device) {
  if (device < 0 || device >= device_count()) return;
  std::lock_guard<std::mutex> lock(mu_);
  devices_[static_cast<std::size_t>(device)].excluded = true;
}

bool DeviceLoadTracker::is_excluded(int device) const {
  if (device < 0 || device >= device_count()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return devices_[static_cast<std::size_t>(device)].excluded;
}

DeviceSnapshot DeviceLoadTracker::snapshot(int device) const {
  DeviceSnapshot out;
  if (device < 0 || device >= device_count()) return out;
  std::lock_guard<std::mutex> lock(mu_);
  const PerDevice& dev = devices_[static_cast<std::size_t>(device)];
  out.inflight = dev.inflight;
  out.ewma_seconds = dev.ewma_seconds;
  out.completed = dev.completed;
  out.excluded = dev.excluded;
  return out;
}

std::uint64_t DeviceLoadTracker::picks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return picks_;
}

std::uint64_t DeviceLoadTracker::steals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steals_;
}

void DeviceLoadTracker::bind_metrics(telemetry::Registry* registry,
                                     std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    picks_counter_ = nullptr;
    steals_counter_ = nullptr;
    for (auto& dev : devices_) {
      dev.inflight_gauge = nullptr;
      dev.ewma_gauge = nullptr;
      dev.items = nullptr;
    }
    return;
  }
  const std::string base(prefix);
  picks_counter_ = registry->counter(base + ".picks");
  steals_counter_ = registry->counter(base + ".steals");
  for (int d = 0; d < device_count(); ++d) {
    PerDevice& dev = devices_[static_cast<std::size_t>(d)];
    const std::string dev_base = base + ".d" + std::to_string(d);
    dev.inflight_gauge = registry->gauge(dev_base + ".inflight");
    dev.ewma_gauge = registry->gauge(dev_base + ".ewma_ms");
    dev.items = registry->counter(dev_base + ".items");
  }
}

// ---- AimdBatchSizer ---------------------------------------------------------

AimdBatchSizer::AimdBatchSizer(AimdConfig cfg) : cfg_(cfg) {
  cfg_.min_size = std::max<std::uint64_t>(cfg_.min_size, 1);
  cfg_.max_size = std::max(cfg_.max_size, cfg_.min_size);
  cfg_.add_step = std::max<std::uint64_t>(cfg_.add_step, 1);
  limit_ = cfg_.max_size;
  current_ = std::clamp(cfg_.initial, cfg_.min_size, cfg_.max_size);
}

void AimdBatchSizer::clamp_to_limit() {
  current_ = std::clamp(current_, cfg_.min_size, limit_);
}

void AimdBatchSizer::on_success(double unit_cost) {
  ++observations_;
  if (converged_) return;
  if (slow_start_) {
    const bool improving =
        best_unit_cost_ < 0.0 ||
        unit_cost < best_unit_cost_ * (1.0 - cfg_.improve_eps);
    if (improving) {
      best_unit_cost_ = best_unit_cost_ < 0.0
                            ? unit_cost
                            : std::min(best_unit_cost_, unit_cost);
      const std::uint64_t next = std::min(
          current_ > limit_ / 2 ? limit_ : current_ * 2, limit_);
      if (next == current_) {
        converged_ = true;
      } else {
        current_ = next;
        ++grows_;
      }
    } else if (cfg_.backoff_on_regress &&
               unit_cost > best_unit_cost_ * (1.0 + cfg_.improve_eps)) {
      // Overshoot: the last doubling made things strictly worse (e.g. stage
      // granularity starving the farm), not merely flat. Step back to the
      // size that produced the best measurement and stop there.
      current_ = std::max(current_ / 2, cfg_.min_size);
      ++shrinks_;
      clamp_to_limit();
      converged_ = true;
    } else {
      // The per-element curve flattened: the device is full. This is the
      // occupancy break-even the paper found by hand at ~31 lines.
      converged_ = true;
    }
    return;
  }
  // Post-rejection additive probing toward the refined limit.
  if (current_ >= limit_) {
    converged_ = true;
    return;
  }
  current_ = std::min(current_ + cfg_.add_step, limit_);
  ++grows_;
}

void AimdBatchSizer::on_reject() {
  ++rejects_;
  slow_start_ = false;
  converged_ = false;
  best_unit_cost_ = -1.0;
  // The rejected size is known bad; cap probing strictly below it so the
  // grow/reject cycle cannot repeat at the same size.
  const std::uint64_t rejected = current_;
  limit_ = std::min(limit_, rejected > cfg_.add_step ? rejected - cfg_.add_step
                                                     : cfg_.min_size);
  limit_ = std::max(limit_, cfg_.min_size);
  current_ = std::max(rejected / 2, cfg_.min_size);
  ++shrinks_;
  clamp_to_limit();
  if (current_ >= limit_) converged_ = true;
}

}  // namespace hs::sched
