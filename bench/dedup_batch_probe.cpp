// §IV-B / §V-B batch-size analysis for Dedup:
//  * throughput vs batch size (larger batches amortize launches until
//    stage granularity starves the farm);
//  * per-worker device-memory footprint vs batch size, reproducing the
//    paper's failure mode: "we had to reduce the batch size for OpenCL
//    because the number of items being processed resulted in an out of
//    memory error" (they fell back from 10 MB to 1 MB batches).
//
// The footprint model follows the pipeline's actual allocations: per
// memory space, the batch data plus the FindMatch result array
// (sizeof(LzssMatch) per input position) — times replicas x mem-spaces
// concurrent items. The probe walks batch sizes and reports where a
// memory-constrained device (--device-mem, default 12GB like the Titan XP;
// try --device-mem=1GiB) rejects the allocation, exercising the same
// OUT_OF_MEMORY path the shims raise.
//
// Flags: --input-size=BYTES (8MB) | --dataset=... (parsec) |
//        --batches=65536,262144,... | --replicas=N (19) | --mem-spaces=N
//        --device-mem=BYTES | --csv
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "datagen/corpus.hpp"
#include "dedup/modeled.hpp"

namespace hs {
namespace {

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  const std::uint64_t input_size = args.get_bytes("input-size", 8 * 1000 * 1000);
  const int replicas = static_cast<int>(args.get_int("replicas", 19));
  const int mem_spaces = static_cast<int>(args.get_int("mem-spaces", 2));
  const std::uint64_t device_mem =
      args.get_bytes("device-mem", 12ull * 1024 * 1024 * 1024);

  datagen::CorpusSpec spec;
  auto kind = datagen::parse_corpus_kind(args.get_string("dataset", "parsec"));
  if (!kind.ok()) {
    std::cerr << kind.status().ToString() << "\n";
    return 1;
  }
  spec.kind = kind.value();
  spec.bytes = input_size;
  auto input = datagen::generate(spec);

  std::vector<std::uint64_t> batch_sizes;
  {
    std::stringstream ss(args.get_string(
        "batches", "65536,131072,262144,524288,1048576,2097152,10485760"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      auto v = parse_bytes(tok);
      if (v.ok() && v.value() > 0) batch_sizes.push_back(v.value());
    }
  }

  Table table("Dedup batch-size probe (" +
              std::string(datagen::corpus_name(spec.kind)) + ", " +
              format_bytes(input_size) + ", " + std::to_string(replicas) +
              " replicas x " + std::to_string(mem_spaces) +
              " spaces, device " + format_bytes(device_mem) + ")");
  table.set_header({"batch size", "batches", "throughput", "device footprint",
                    "fits?"});

  for (std::uint64_t batch : batch_sizes) {
    dedup::Fig5Config cfg;
    cfg.replicas = replicas;
    cfg.mem_spaces = mem_spaces;
    cfg.dedup.batch_size = static_cast<std::uint32_t>(batch);
    cfg.dedup.rabin.mask = 0x7FF;
    cfg.dedup.rabin.max_block =
        std::min<std::uint32_t>(65536, static_cast<std::uint32_t>(batch));

    // Per-space footprint: batch data + FindMatch results; one space per
    // in-flight item, replicas * mem_spaces concurrent items per device.
    const std::uint64_t per_space =
        batch * (1 + sizeof(kernels::LzssMatch));
    const std::uint64_t footprint =
        per_space * static_cast<std::uint64_t>(replicas) *
        static_cast<std::uint64_t>(mem_spaces);
    const bool fits = footprint <= device_mem;

    std::string throughput = "-";
    std::string nbatches = "-";
    if (fits) {
      dedup::DedupTrace trace = dedup::build_trace(input, cfg.dedup);
      auto r = run_fig5(trace, cfg, dedup::Fig5Backend::kSparOcl);
      throughput = format_fixed(r.throughput_mb_s, 1) + " MB/s";
      nbatches = std::to_string(trace.batches.size());
    } else {
      throughput = "CL_OUT_OF_RESOURCES";
    }
    table.add_row({format_bytes(batch), nbatches, throughput,
                   format_bytes(footprint), fits ? "yes" : "NO"});
  }

  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
    std::cout << "\nthe paper hit this wall at 10 MB batches and fell back "
                 "to 1 MB (try --device-mem=1GiB to move the boundary).\n";
  }
  return 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
