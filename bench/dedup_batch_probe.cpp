// §IV-B / §V-B batch-size analysis for Dedup:
//  * throughput vs batch size (larger batches amortize launches until
//    stage granularity starves the farm);
//  * per-worker device-memory footprint vs batch size, reproducing the
//    paper's failure mode: "we had to reduce the batch size for OpenCL
//    because the number of items being processed resulted in an out of
//    memory error" (they fell back from 10 MB to 1 MB batches).
//
// The footprint model follows the pipeline's actual allocations: per
// memory space, the batch data plus the FindMatch result array
// (sizeof(LzssMatch) per input position) — times replicas x mem-spaces
// concurrent items. The probe walks batch sizes and reports where a
// memory-constrained device (--device-mem, default 12GB like the Titan XP;
// try --device-mem=1GiB) rejects the allocation, exercising the same
// OUT_OF_MEMORY path the shims raise.
//
// Flags: --input-size=BYTES (8MB) | --dataset=... (parsec) |
//        --batches=65536,262144,... | --replicas=N (19) | --mem-spaces=N
//        --device-mem=BYTES | --csv
//        --lzss=legacy|chain match finder for every config built here
//        (default legacy, matching the calibrated cost model)
//        --store=DIR runs the functional persistence probe instead:
//        archive through the sequential pipeline with a persistent
//        DupStore at DIR, spill, and print one parseable key=value line
//        (run twice against one DIR: identical archive_sha1, second run
//        store_misses=0 — the restart-equivalence CI leg)
//        --sched=static|adaptive (default static). static walks the
//        --batches list as before; adaptive discards the list and lets the
//        AIMD sizer discover the batch size: each iteration allocates the
//        concurrent working set through gpusim::Device::malloc on a device
//        with --device-mem bytes (the same accounting whose failure the
//        shims raise as OUT_OF_MEMORY), shrinking on rejection and growing
//        while measured throughput improves — converging below the memory
//        ceiling with no hardcoded 1 MB fallback (DESIGN.md §4h).
#include <iostream>
#include <span>
#include <sstream>

#include "bench_common.hpp"
#include "datagen/corpus.hpp"
#include "dedup/dup_store.hpp"
#include "dedup/modeled.hpp"
#include "dedup/pipelines.hpp"
#include "kernels/lzss.hpp"
#include "kernels/sha1.hpp"
#include "sched/sched.hpp"

namespace hs {
namespace {

/// --lzss=legacy|chain for every config this probe builds (default legacy:
/// the modeled rows are calibrated against the brute-force FindMatch cost).
kernels::LzssMode g_lzss_mode = kernels::LzssMode::kLegacy;

void apply_lzss(dedup::DedupConfig& cfg) {
  cfg.lzss.mode = g_lzss_mode;
  if (g_lzss_mode == kernels::LzssMode::kChain) {
    cfg.lzss.window_size = 4096;  // tuned chain config
    cfg.lzss.chain_depth = 2;
  }
}

/// --store=DIR: functional persistence probe. Archives `input` through the
/// sequential pipeline with a persistent DupStore attached to DIR, spills,
/// and prints one parseable key=value line. Run twice against the same
/// directory and the second run's store_misses must be 0 (every digest
/// recovered from the spilled segments) while the archive SHA-1 is
/// identical — the restart-equivalence contract the CI persistence leg
/// diffs.
int run_store_probe(std::span<const std::uint8_t> input,
                    const dedup::DedupConfig& dcfg, const std::string& dir) {
  dedup::DupStore store;
  Status st = store.open(dir);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  auto archive = dedup::archive_sequential(input, dcfg, &store);
  if (!archive.ok()) {
    std::cerr << archive.status().ToString() << "\n";
    return 1;
  }
  st = store.spill();
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  const dedup::DupStore::Stats s = store.stats();
  const auto digest = kernels::Sha1::hash(archive.value());
  std::cout << "store_probe archive_sha1=" << kernels::digest_hex(digest)
            << " archive_bytes=" << archive.value().size()
            << " blocks=" << s.store_hits + s.store_misses
            << " store_hits=" << s.store_hits
            << " store_misses=" << s.store_misses
            << " entries=" << s.entries
            << " segments_loaded=" << s.segments_loaded
            << " entries_recovered=" << s.entries_recovered
            << " truncated_segments=" << s.truncated_segments
            << " quarantined_segments=" << s.quarantined_segments
            << " spills=" << s.spills << "\n";
  return 0;
}

/// --sched=adaptive: AIMD probe. Returns the converged batch size.
int run_adaptive(std::span<const std::uint8_t> input, int replicas,
                 int mem_spaces, std::uint64_t device_mem,
                 std::string_view dataset, bool csv) {
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::TitanXP();
  spec.memory_bytes = device_mem;
  auto machine = gpusim::Machine::Create(1, spec);
  gpusim::Device& dev = machine->device(0);

  const std::uint64_t concurrency =
      static_cast<std::uint64_t>(replicas) *
      static_cast<std::uint64_t>(mem_spaces);
  sched::AimdConfig acfg;
  acfg.min_size = 4096;
  acfg.initial = 64 * 1024;
  acfg.add_step = 64 * 1024;
  // Batch sizes are uint32 in DedupConfig; also no point batching past the
  // whole input.
  acfg.max_size = std::min<std::uint64_t>(input.size(), 1u << 31);
  // Dedup batches are homogeneous (same data distribution at any offset),
  // so a throughput regression after a doubling really is the batch size's
  // fault — step back to the best size instead of holding the overshoot.
  acfg.backoff_on_regress = true;

  sched::AimdBatchSizer sizer(acfg);

  Table table("Dedup batch-size probe — adaptive (" + std::string(dataset) +
              ", " + format_bytes(input.size()) + ", " +
              std::to_string(replicas) + " replicas x " +
              std::to_string(mem_spaces) + " spaces, device " +
              format_bytes(device_mem) + ")");
  table.set_header(
      {"iter", "batch size", "device footprint", "throughput", "action"});

  int iter = 0;
  for (; !sizer.converged() && iter < 64; ++iter) {
    const std::uint64_t batch = sizer.current();
    // The pipeline's concurrent working set: per in-flight item, the batch
    // data plus the FindMatch result array — allocated for real so the
    // device's memory accounting (not a formula) decides whether it fits.
    const std::uint64_t per_space = batch * (1 + sizeof(kernels::LzssMatch));
    std::vector<void*> bufs;
    bufs.reserve(static_cast<std::size_t>(concurrency));
    bool fits = true;
    for (std::uint64_t i = 0; i < concurrency; ++i) {
      auto r = dev.malloc(per_space);
      if (!r.ok()) {
        fits = false;
        break;
      }
      bufs.push_back(r.value());
    }

    std::string throughput;
    std::string action;
    if (!fits) {
      sizer.on_reject();
      throughput = "CL_OUT_OF_RESOURCES";
      action = "shrink to " + format_bytes(sizer.current());
    } else {
      dedup::Fig5Config cfg;
      cfg.replicas = replicas;
      cfg.mem_spaces = mem_spaces;
      cfg.dedup.batch_size = static_cast<std::uint32_t>(batch);
      cfg.dedup.rabin.mask = 0x7FF;
      apply_lzss(cfg.dedup);
      cfg.dedup.rabin.max_block =
          std::min<std::uint32_t>(65536, static_cast<std::uint32_t>(batch));
      dedup::DedupTrace trace = dedup::build_trace(input, cfg.dedup);
      auto r = run_fig5(trace, cfg, dedup::Fig5Backend::kSparOcl);
      throughput = format_fixed(r.throughput_mb_s, 1) + " MB/s";
      sizer.on_success(r.modeled_seconds /
                       static_cast<double>(input.size()));
      if (sizer.converged()) {
        action = sizer.current() == batch
                     ? "converged"
                     : "back off, converged at " +
                           format_bytes(sizer.current());
      } else if (sizer.current() > batch) {
        action = "grow to " + format_bytes(sizer.current());
      } else {
        action = "hold";
      }
    }
    for (void* p : bufs) (void)dev.free(p);
    table.add_row({std::to_string(iter), format_bytes(batch),
                   format_bytes(per_space * concurrency), throughput,
                   action});
  }

  if (csv) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
    std::cout << "\nconverged at " << format_bytes(sizer.current())
              << " batches after " << iter << " probes (" << sizer.rejects()
              << " memory rejections, believed ceiling "
              << format_bytes(sizer.limit())
              << ") — the paper's 1 MB OpenCL fallback, discovered instead "
                 "of hardcoded.\n";
  }
  return 0;
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  auto input_size_or = args.get_positive_bytes("input-size", 8 * 1000 * 1000);
  auto replicas_or = args.get_positive_int("replicas", 19);
  auto mem_spaces_or = args.get_positive_int("mem-spaces", 2);
  auto device_mem_or =
      args.get_positive_bytes("device-mem", 12ull * 1024 * 1024 * 1024);
  auto sched_or = sched::parse_sched_mode(args.get_string("sched", "static"));
  for (const Status& s :
       {input_size_or.status(), replicas_or.status(), mem_spaces_or.status(),
        device_mem_or.status(), sched_or.status()}) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  const std::uint64_t input_size = input_size_or.value();
  const int replicas = static_cast<int>(replicas_or.value());
  const int mem_spaces = static_cast<int>(mem_spaces_or.value());
  const std::uint64_t device_mem = device_mem_or.value();

  datagen::CorpusSpec spec;
  auto kind = datagen::parse_corpus_kind(args.get_string("dataset", "parsec"));
  if (!kind.ok()) {
    std::cerr << kind.status().ToString() << "\n";
    return 1;
  }
  spec.kind = kind.value();
  spec.bytes = input_size;
  auto input = datagen::generate(spec);

  const std::string lzss_name = args.get_string("lzss", "legacy");
  if (!kernels::parse_lzss_mode(lzss_name, g_lzss_mode)) {
    std::cerr << "unknown --lzss='" << lzss_name
              << "' (expected legacy|chain)\n";
    return 1;
  }

  if (args.has("store")) {
    const std::string dir = args.get_string("store", "");
    if (dir.empty()) {
      std::cerr << "--store requires a directory path\n";
      return 1;
    }
    dedup::DedupConfig dcfg;
    dcfg.batch_size = 256 * 1024;
    dcfg.rabin.mask = 0x7FF;
    apply_lzss(dcfg);
    return run_store_probe(input, dcfg, dir);
  }

  if (sched_or.value() == sched::SchedMode::kAdaptive) {
    return run_adaptive(input, replicas, mem_spaces, device_mem,
                        datagen::corpus_name(spec.kind),
                        args.get_bool("csv", false));
  }

  std::vector<std::uint64_t> batch_sizes;
  {
    std::stringstream ss(args.get_string(
        "batches", "65536,131072,262144,524288,1048576,2097152,10485760"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      auto v = parse_bytes(tok);
      if (v.ok() && v.value() > 0) batch_sizes.push_back(v.value());
    }
  }

  Table table("Dedup batch-size probe (" +
              std::string(datagen::corpus_name(spec.kind)) + ", " +
              format_bytes(input_size) + ", " + std::to_string(replicas) +
              " replicas x " + std::to_string(mem_spaces) +
              " spaces, device " + format_bytes(device_mem) + ")");
  table.set_header({"batch size", "batches", "throughput", "device footprint",
                    "fits?"});

  for (std::uint64_t batch : batch_sizes) {
    dedup::Fig5Config cfg;
    cfg.replicas = replicas;
    cfg.mem_spaces = mem_spaces;
    cfg.dedup.batch_size = static_cast<std::uint32_t>(batch);
    cfg.dedup.rabin.mask = 0x7FF;
    apply_lzss(cfg.dedup);
    cfg.dedup.rabin.max_block =
        std::min<std::uint32_t>(65536, static_cast<std::uint32_t>(batch));

    // Per-space footprint: batch data + FindMatch results; one space per
    // in-flight item, replicas * mem_spaces concurrent items per device.
    const std::uint64_t per_space =
        batch * (1 + sizeof(kernels::LzssMatch));
    const std::uint64_t footprint =
        per_space * static_cast<std::uint64_t>(replicas) *
        static_cast<std::uint64_t>(mem_spaces);
    const bool fits = footprint <= device_mem;

    std::string throughput = "-";
    std::string nbatches = "-";
    if (fits) {
      dedup::DedupTrace trace = dedup::build_trace(input, cfg.dedup);
      auto r = run_fig5(trace, cfg, dedup::Fig5Backend::kSparOcl);
      throughput = format_fixed(r.throughput_mb_s, 1) + " MB/s";
      nbatches = std::to_string(trace.batches.size());
    } else {
      throughput = "CL_OUT_OF_RESOURCES";
    }
    table.add_row({format_bytes(batch), nbatches, throughput,
                   format_bytes(footprint), fits ? "yes" : "NO"});
  }

  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
    std::cout << "\nthe paper hit this wall at 10 MB batches and fell back "
                 "to 1 MB (try --device-mem=1GiB to move the boundary).\n";
  }
  return 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
