// Fig. 1 reproduction: "Optimizing Mandelbrot Streaming application".
//
// Replays the paper's optimization ladder on the modeled machine
// (i9-7900X + 2x simulated Titan XP) and prints execution time and speedup
// versus sequential for every rung, next to the paper's reported numbers
// (which were measured at dim=2000, niter=200000; run with --paper-scale
// to model the same workload).
//
// Flags: --paper-scale | --quick | --dim=N --niter=N | --csv
//        --batch=N (default 32) | --map-cache=DIR
//        --sched=static|adaptive (default static). static reproduces the
//                          paper's ladder bit-for-bit; adaptive appends
//                          rows where the batch size is discovered by the
//                          AIMD sizer and multi-GPU dispatch is least-
//                          loaded instead of round-robin (DESIGN.md §4h).
//                          The fault/telemetry demos also switch the
//                          functional pipeline to tracker-driven dispatch.
//        --json=PATH      (also write every row — label, modeled time,
//                          speedup, kernel launches — as machine-readable
//                          JSON, same shape as the fig5/micro outputs)
//        --trace-dir=DIR  (dump each variant's modeled schedule as Chrome
//                          trace JSON, viewable in ui.perfetto.dev)
//        --faults=SPEC    (run the functional SPar+CUDA pipeline under an
//                          injected fault plan — see gpusim/fault_plan.hpp
//                          for the spec grammar, e.g. "d2h.p=0.1,lost.nth=50"
//                          — and verify the image is bit-exact vs fault-free)
//        --trace=FILE --metrics=FILE (run the functional SPar+CUDA pipeline
//                          with runtime telemetry on and export a *measured*
//                          Chrome trace — same event schema as --trace-dir's
//                          modeled schedules, so both load side by side in
//                          ui.perfetto.dev — and/or a metrics dump: .json
//                          gets JSON, anything else Prometheus text)
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "cudax/cudax.hpp"
#include "gpusim/fault_plan.hpp"
#include "mandel/calibrate.hpp"
#include "mandel/modeled.hpp"
#include "mandel/pipelines.hpp"
#include "sched/sched.hpp"

namespace hs {
namespace {

using benchtool::speedup_cell;
using mandel::GpuApi;
using mandel::GpuMode;
using mandel::ModeledConfig;
using mandel::RunResult;

struct PaperRef {
  const char* time;
  const char* speedup;
};

/// --faults demo: the real (functional) SPar+CUDA pipeline under an
/// injected fault plan must produce the bit-exact fault-free image.
/// Returns 0 on success.
int run_fault_demo(const std::string& spec, kernels::MandelParams params,
                   sched::SchedMode mode) {
  auto plan = gpusim::FaultPlan::Parse(spec);
  if (!plan.ok()) {
    std::cerr << "[bench] bad --faults spec: " << plan.status().ToString()
              << "\n";
    return 1;
  }
  // The functional pipeline computes for real; keep the workload modest.
  params.dim = std::min(params.dim, 256);
  params.niter = std::min(params.niter, 2000);

  const bool adaptive = mode == sched::SchedMode::kAdaptive;
  auto clean_machine =
      gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(clean_machine.get());
  sched::DeviceLoadTracker clean_tracker(clean_machine->device_count());
  auto clean = mandel::render_spar_cuda(params, 4, *clean_machine, nullptr, {},
                                        adaptive ? &clean_tracker : nullptr);
  cudax::unbind_machine();
  if (!clean.ok()) {
    std::cerr << "[bench] fault-free run failed: " << clean.status().ToString()
              << "\n";
    return 1;
  }

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  for (int d = 0; d < machine->device_count(); ++d) {
    machine->device(d).set_fault_plan(plan.value());
  }
  cudax::bind_machine(machine.get());
  RetryStats stats;
  sched::DeviceLoadTracker tracker(machine->device_count());
  flow::FailureReport failures;
  auto faulty = mandel::render_spar_cuda(params, 4, *machine, &stats, {},
                                         adaptive ? &tracker : nullptr,
                                         &failures);
  cudax::unbind_machine();

  std::cout << "\n--faults=" << spec << " (dim=" << params.dim
            << ", functional SPar+CUDA pipeline, sched="
            << sched::to_string(mode) << ")\n";
  for (int d = 0; d < machine->device_count(); ++d) {
    std::cout << "  device " << d << ": "
              << machine->device(d).fault_telemetry().ToString() << "\n";
  }
  std::cout << "  recovery: " << stats.ToString() << "\n";
  if (adaptive) {
    std::cout << "  scheduler: picks=" << tracker.picks()
              << " steals=" << tracker.steals() << "\n";
  }
  if (!faulty.ok()) {
    std::cerr << "[bench] faulty run failed: " << faulty.status().ToString()
              << "\n";
    return 1;
  }
  if (faulty.value() != clean.value()) {
    std::cerr << "[bench] FAULT DEMO MISMATCH: image differs from fault-free "
                 "run\n";
    return 1;
  }
  if (!failures.ok()) {
    // The retry ladder is supposed to absorb every injected fault; a stage
    // failure on record means something went unrecovered.
    std::cerr << "[bench] unrecovered stage failures: " << failures.ToString()
              << "\n";
    return 1;
  }
  std::cout << "  image bit-exact vs fault-free run: OK\n";
  return 0;
}

/// --trace/--metrics demo: the real (functional) SPar+CUDA pipeline with
/// the process-wide telemetry singletons capturing, exported to the
/// requested files. Returns 0 on success.
int run_telemetry_demo(const benchtool::TelemetryOutputs& outs,
                       kernels::MandelParams params, sched::SchedMode mode) {
  // The functional pipeline computes for real; keep the workload modest.
  params.dim = std::min(params.dim, 256);
  params.niter = std::min(params.niter, 2000);
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  benchtool::begin_telemetry_capture(outs);
  sched::DeviceLoadTracker tracker(machine->device_count());
  if (mode == sched::SchedMode::kAdaptive) {
    // Export the scheduler's decisions alongside the pipeline's metrics.
    tracker.bind_metrics(&telemetry::Registry::Default(), "sched");
  }
  auto image = mandel::render_spar_cuda(
      params, 4, *machine, nullptr, {},
      mode == sched::SchedMode::kAdaptive ? &tracker : nullptr);
  int rc = benchtool::end_telemetry_capture(outs);
  cudax::unbind_machine();
  if (!image.ok()) {
    std::cerr << "[bench] telemetry demo run failed: "
              << image.status().ToString() << "\n";
    return 1;
  }
  return rc;
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  kernels::MandelParams params = benchtool::mandel_workload(args);
  mandel::IterationMap map = benchtool::load_map(args, params);

  auto batch_or = args.get_positive_int("batch", 32);
  if (!batch_or.ok()) {
    std::cerr << batch_or.status().ToString() << "\n";
    return 1;
  }
  auto sched_or = sched::parse_sched_mode(args.get_string("sched", "static"));
  if (!sched_or.ok()) {
    std::cerr << sched_or.status().ToString() << "\n";
    return 1;
  }
  const sched::SchedMode sched_mode = sched_or.value();

  ModeledConfig cfg;
  cfg.batch_lines = static_cast<int>(batch_or.value());
  if (args.get_bool("calibrate", true)) {
    cfg = mandel::calibrate_to_paper(map, {}, cfg);
  }
  const std::string trace_dir = args.get_string("trace-dir", "");
  int trace_seq = 0;
  auto with_trace = [&](ModeledConfig c, const std::string& name) {
    if (!trace_dir.empty()) {
      c.trace_path = trace_dir + "/fig1_" + std::to_string(trace_seq++) +
                     "_" + name + ".json";
    }
    return c;
  };

  Table table("Fig. 1 — Optimizing Mandelbrot Streaming (modeled)");
  table.set_header({"version", "modeled time", "speedup", "kernels",
                    "paper time", "paper speedup"});

  const std::string json_path = args.get_string("json", "");
  struct JsonRow {
    std::string label;
    double modeled_seconds;
    double speedup;
    std::uint64_t kernel_launches;
  };
  std::vector<JsonRow> json_rows;

  RunResult seq = run_sequential(map, with_trace(cfg, "sequential"));
  double base = seq.modeled_seconds;
  bool mismatch = false;
  auto add = [&](const RunResult& r, PaperRef ref) {
    if (r.checksum != seq.checksum) {
      std::cerr << "[bench] CHECKSUM MISMATCH in variant '" << r.label
                << "'\n";
      mismatch = true;
    }
    table.add_row({r.label, format_seconds(r.modeled_seconds),
                   speedup_cell(base, r.modeled_seconds),
                   r.kernel_launches ? std::to_string(r.kernel_launches) : "-",
                   ref.time, ref.speedup});
    json_rows.push_back({r.label, r.modeled_seconds,
                         r.modeled_seconds > 0 ? base / r.modeled_seconds : 0,
                         r.kernel_launches});
  };

  add(seq, {"400s", "1.0x"});

  {
    ModeledConfig c = cfg;
    c.cpu_workers = 20;
    auto r = run_cpu_pipeline(map, c, mandel::CpuModel::kSpar);
    r.label = "cpu 20 threads (spar)";
    add(r, {"~23.5s", "17x"});
  }
  table.add_separator();
  add(run_gpu_single_thread(map, with_trace(cfg, "per_line"), GpuApi::kCuda,
                            GpuMode::kPerLine1D),
      {"129s", "3.1x"});
  add(run_gpu_single_thread(map, with_trace(cfg, "2d"), GpuApi::kCuda,
                            GpuMode::kPerLine2D),
      {"250s", "1.6x"});
  add(run_gpu_single_thread(map, with_trace(cfg, "batch32"), GpuApi::kCuda,
                            GpuMode::kBatched),
      {"8.9s", "45x"});
  add(run_gpu_single_thread(map, cfg, GpuApi::kOpenCl, GpuMode::kBatched),
      {"9.1s", "44x"});
  {
    ModeledConfig c = with_trace(cfg, "batch32_2buf");
    c.buffers_per_gpu = 2;
    add(run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched),
        {"5.98s", "67x"});
  }
  {
    ModeledConfig c = cfg;
    c.buffers_per_gpu = 4;
    add(run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched),
        {"5.4s", "74x"});
  }
  table.add_separator();
  {
    ModeledConfig c = cfg;
    c.devices = 2;
    c.buffers_per_gpu = 1;
    add(run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched),
        {"4.48s", "89x"});
  }
  {
    ModeledConfig c = with_trace(cfg, "batch32_2buf_2gpu");
    c.devices = 2;
    c.buffers_per_gpu = 2;
    add(run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched),
        {"3.02s", "132x"});
    auto r = run_gpu_single_thread(map, c, GpuApi::kOpenCl, GpuMode::kBatched);
    add(r, {"3.07s", "130x"});
  }

  // Adaptive rows: the AIMD sizer discovers the batch size and multi-GPU
  // dispatch goes least-loaded. The paper has no reference numbers for
  // these; the interesting comparison is against the hand-tuned static
  // rungs above (the sizer should land at or past the 32-line break-even).
  std::uint64_t adaptive_lines = 0;
  if (sched_mode == sched::SchedMode::kAdaptive) {
    table.add_separator();
    {
      ModeledConfig c = with_trace(cfg, "adaptive");
      c.sched = sched::SchedMode::kAdaptive;
      auto r = run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched);
      adaptive_lines = r.adaptive_batch_lines;
      add(r, {"-", "-"});
    }
    {
      ModeledConfig c = cfg;
      c.sched = sched::SchedMode::kAdaptive;
      c.buffers_per_gpu = 2;
      add(run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched),
          {"-", "-"});
    }
    {
      ModeledConfig c = cfg;
      c.sched = sched::SchedMode::kAdaptive;
      c.devices = 2;
      c.buffers_per_gpu = 1;
      add(run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched),
          {"-", "-"});
    }
    {
      ModeledConfig c = with_trace(cfg, "adaptive_2buf_2gpu");
      c.sched = sched::SchedMode::kAdaptive;
      c.devices = 2;
      c.buffers_per_gpu = 2;
      add(run_gpu_single_thread(map, c, GpuApi::kCuda, GpuMode::kBatched),
          {"-", "-"});
      add(run_gpu_single_thread(map, c, GpuApi::kOpenCl, GpuMode::kBatched),
          {"-", "-"});
    }
  }

  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
    std::cout << "\npaper columns: reported at dim=2000, niter=200000 on "
                 "2x Titan XP; modeled columns use the calibrated simulator "
                 "(DESIGN.md S2). Checksums of all variants verified equal.\n";
    if (sched_mode == sched::SchedMode::kAdaptive) {
      std::cout << "adaptive rows: AIMD batch sizer converged at "
                << adaptive_lines
                << " lines/batch (hand-tuned static value: "
                << cfg.batch_lines << "); multi-GPU dispatch least-loaded.\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "[bench] cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"fig1_mandel_ladder\",\n";
    json << "  \"dim\": " << params.dim << ",\n";
    json << "  \"niter\": " << params.niter << ",\n";
    json << "  \"batch_lines\": " << cfg.batch_lines << ",\n";
    json << "  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      json << "    {\"label\": \"" << r.label
           << "\", \"modeled_seconds\": " << r.modeled_seconds
           << ", \"speedup\": " << r.speedup
           << ", \"kernel_launches\": " << r.kernel_launches << "}"
           << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "[bench] json written to %s\n", json_path.c_str());
  }

  if (const std::string spec = args.get_string("faults", ""); !spec.empty()) {
    if (int rc = run_fault_demo(spec, params, sched_mode); rc != 0) return rc;
  }
  if (const auto outs = benchtool::telemetry_outputs(args); outs.active()) {
    if (int rc = run_telemetry_demo(outs, params, sched_mode); rc != 0) {
      return rc;
    }
  }

  // Cross-variant functional check: every rung rendered the same image.
  return mismatch ? 1 : 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
