// Fig. 5 reproduction: "Dedup results" — throughput (MB/s) of every
// parallel version on three datasets.
//
// Datasets are the synthetic stand-ins of DESIGN.md §2 (the paper used
// PARSEC's 185 MB native input, an 816 MB Linux source tree, and the
// 202 MB Silesia corpus; generation is deterministic and the size is
// scaled by --input-size, default 16 MB, so the whole figure regenerates in
// about a minute — pass --input-size=185MB etc. for full-size runs).
//
// Rows per dataset: SPar CPU-only; CUDA/OpenCL single-threaded and
// SPar+CUDA / SPar+OpenCL — each without the batch optimization
// ("per-block kernels", the paper's very poor first attempt), with it, and
// with 2x memory spaces; plus SPar+GPU on 2 GPUs.
//
// Flags: --input-size=BYTES | --dataset=parsec|source|silesia (default:
//        all) | --replicas=N (19) | --batch-size=BYTES (1MiB) | --csv
//        --sched=static|adaptive (default static). static reproduces the
//        figure bit-for-bit; adaptive appends SPar+GPU rows where batches
//        go to the globally least-loaded device instead of the replica's
//        round-robin binding (DESIGN.md §4h). The fault/telemetry demos
//        also switch the functional archiver to tracker-driven dispatch.
//        --json=PATH (also write every row — dataset, label, modeled time,
//        throughput, kernel launches — as machine-readable JSON, e.g.
//        BENCH_fig5.json, so the perf trajectory is tracked across PRs)
//        --faults=SPEC (run the functional SPar+CUDA archiver under an
//        injected fault plan — spec grammar in gpusim/fault_plan.hpp, e.g.
//        "alloc.p=0.2,lost.nth=40" — and verify the archive still extracts
//        to the bit-exact input)
//        --store=DIR (persistent DupStore demo: archive with a store
//        attached to DIR, spill, then "restart" — a fresh store replays the
//        segments — and archive again with the SPar CPU pipeline recording
//        concurrently; asserts the archive is byte-identical across the
//        restart and every spilled digest comes back as a store hit)
//        --trace=FILE --metrics=FILE (run the functional SPar+CUDA archiver
//        with runtime telemetry on and export a Chrome trace — per-stage +
//        H2D/kernel/D2H spans, viewable in ui.perfetto.dev — and/or a
//        metrics dump: .json gets JSON, anything else Prometheus text)
//        --functional (also run the *functional* sequential and SPar-CPU
//        archivers on each dataset and report measured wall time — unlike
//        the modeled rows above, these numbers are this host's. Implied by
//        any of: --workers-hash=N / --workers-compress=N (farm sizes,
//        default 4), --pin (pin runtime threads round-robin to cores),
//        --hash-unordered (least-loaded unordered hash farm; the serial
//        duplicate check restores stream order, so the archive is still
//        byte-identical). The SIMD dispatch level follows HS_SIMD.)
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>

#include "kernels/lzss.hpp"
#include "kernels/simd/dispatch.hpp"

#include "bench_common.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/modeled.hpp"
#include "dedup/pipelines.hpp"
#include "gpusim/fault_plan.hpp"
#include "sched/sched.hpp"

namespace hs {
namespace {

using dedup::Fig5Backend;
using dedup::Fig5Config;
using dedup::Fig5Result;

/// --faults demo: the real (functional) SPar+CUDA archiver under an
/// injected fault plan must still produce an archive whose extraction is
/// bit-exact against the input. Returns 0 on success.
int run_fault_demo(const std::string& spec, dedup::DedupConfig config,
                   sched::SchedMode mode) {
  auto plan = gpusim::FaultPlan::Parse(spec);
  if (!plan.ok()) {
    std::cerr << "[bench] bad --faults spec: " << plan.status().ToString()
              << "\n";
    return 1;
  }
  // The functional archiver computes SHA1/LZSS for real; keep it modest.
  datagen::CorpusSpec corpus;
  corpus.kind = datagen::CorpusKind::kParsecLike;
  corpus.bytes = 2 * 1000 * 1000;
  const std::vector<std::uint8_t> input = datagen::generate(corpus);
  config.batch_size = std::min<std::uint32_t>(config.batch_size, 256 * 1024);

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  for (int d = 0; d < machine->device_count(); ++d) {
    machine->device(d).set_fault_plan(plan.value());
  }
  cudax::bind_machine(machine.get());
  RetryStats stats;
  sched::DeviceLoadTracker tracker(machine->device_count());
  const bool adaptive = mode == sched::SchedMode::kAdaptive;
  flow::FailureReport failures;
  auto archive = dedup::archive_spar_cuda(input, config, 4, *machine, &stats,
                                          {}, adaptive ? &tracker : nullptr,
                                          &failures);
  cudax::unbind_machine();

  std::cout << "\n--faults=" << spec << " ("
            << format_bytes(corpus.bytes)
            << " parsec-like input, functional SPar+CUDA archiver, sched="
            << sched::to_string(mode) << ")\n";
  for (int d = 0; d < machine->device_count(); ++d) {
    std::cout << "  device " << d << ": "
              << machine->device(d).fault_telemetry().ToString() << "\n";
  }
  std::cout << "  recovery: " << stats.ToString() << "\n";
  if (adaptive) {
    std::cout << "  scheduler: picks=" << tracker.picks()
              << " steals=" << tracker.steals() << "\n";
  }
  if (!archive.ok()) {
    std::cerr << "[bench] faulty archive run failed: "
              << archive.status().ToString() << "\n";
    return 1;
  }
  auto clean = dedup::archive_sequential(input, config);
  if (!clean.ok() || archive.value() != clean.value()) {
    std::cerr << "[bench] FAULT DEMO MISMATCH: archive differs from "
                 "fault-free run\n";
    return 1;
  }
  auto roundtrip = dedup::extract(archive.value());
  if (!roundtrip.ok() || roundtrip.value() != input) {
    std::cerr << "[bench] FAULT DEMO MISMATCH: archive does not extract to "
                 "the input\n";
    return 1;
  }
  if (!failures.ok()) {
    // The retry ladder is supposed to absorb every injected fault; a stage
    // failure on record means something went unrecovered.
    std::cerr << "[bench] unrecovered stage failures: " << failures.ToString()
              << "\n";
    return 1;
  }
  std::cout << "  archive bit-exact and extracts to the input: OK\n";
  return 0;
}

/// --trace/--metrics demo: the real (functional) SPar+CUDA archiver with
/// the process-wide telemetry singletons capturing, exported to the
/// requested files. Returns 0 on success.
int run_telemetry_demo(const benchtool::TelemetryOutputs& outs,
                       dedup::DedupConfig config, sched::SchedMode mode) {
  datagen::CorpusSpec corpus;
  corpus.kind = datagen::CorpusKind::kParsecLike;
  corpus.bytes = 2 * 1000 * 1000;
  const std::vector<std::uint8_t> input = datagen::generate(corpus);
  config.batch_size = std::min<std::uint32_t>(config.batch_size, 256 * 1024);

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  benchtool::begin_telemetry_capture(outs);
  sched::DeviceLoadTracker tracker(machine->device_count());
  if (mode == sched::SchedMode::kAdaptive) {
    // Export the scheduler's decisions alongside the pipeline's metrics.
    tracker.bind_metrics(&telemetry::Registry::Default(), "sched");
  }
  auto archive = dedup::archive_spar_cuda(
      input, config, 4, *machine, nullptr, {},
      mode == sched::SchedMode::kAdaptive ? &tracker : nullptr);
  int rc = benchtool::end_telemetry_capture(outs);
  cudax::unbind_machine();
  if (!archive.ok()) {
    std::cerr << "[bench] telemetry demo run failed: "
              << archive.status().ToString() << "\n";
    return 1;
  }
  return rc;
}

/// --store=DIR demo: the persistent DupStore across a simulated restart.
/// Run 1 archives with a store attached to DIR and spills its segments;
/// run 2 opens a *fresh* store on the same directory (replaying the
/// segments, as a restarted archiver would) and archives again. The
/// archive bytes must be identical across the restart — the store is
/// cross-run telemetry/content state, never archive state — and every
/// digest the first run inserted must come back as a store hit. Returns 0
/// on success.
int run_store_demo(const std::string& dir, dedup::DedupConfig config) {
  datagen::CorpusSpec corpus;
  corpus.kind = datagen::CorpusKind::kParsecLike;
  corpus.bytes = 2 * 1000 * 1000;
  const std::vector<std::uint8_t> input = datagen::generate(corpus);
  config.batch_size = std::min<std::uint32_t>(config.batch_size, 256 * 1024);

  dedup::DupStore first;
  if (Status s = first.open(dir); !s.ok()) {
    std::cerr << "[bench] --store open failed: " << s.ToString() << "\n";
    return 1;
  }
  auto run1 = dedup::archive_sequential(input, config, &first);
  if (!run1.ok()) {
    std::cerr << "[bench] --store run 1 failed: " << run1.status().ToString()
              << "\n";
    return 1;
  }
  if (Status s = first.spill(); !s.ok()) {
    std::cerr << "[bench] --store spill failed: " << s.ToString() << "\n";
    return 1;
  }
  const dedup::DupStore::Stats before = first.stats();

  // "Restart": a brand-new store recovers the spilled segments from disk.
  dedup::DupStore second;
  if (Status s = second.open(dir); !s.ok()) {
    std::cerr << "[bench] --store reopen failed: " << s.ToString() << "\n";
    return 1;
  }
  const dedup::DupStore::Stats recovered = second.stats();
  // The SPar CPU archiver exercises the concurrent record() path against
  // the recovered state; its archive must match run 1 bit for bit.
  dedup::SparCpuOptions opts;
  opts.workers_hash = 4;
  opts.workers_compress = 4;
  opts.store = &second;
  auto run2 = dedup::archive_spar_cpu(input, config, opts);
  if (!run2.ok()) {
    std::cerr << "[bench] --store run 2 failed: " << run2.status().ToString()
              << "\n";
    return 1;
  }
  const dedup::DupStore::Stats after = second.stats();

  std::cout << "\n--store=" << dir << " (" << format_bytes(corpus.bytes)
            << " parsec-like input, sequential then restart + SPar CPU)\n"
            << "  run 1: entries=" << before.entries
            << " spills=" << before.spills << " misses=" << before.store_misses
            << "\n  restart: segments_loaded=" << recovered.segments_loaded
            << " entries_recovered=" << recovered.entries_recovered
            << "\n  run 2: hits=" << after.store_hits
            << " misses=" << after.store_misses << "\n";

  if (run1.value() != run2.value()) {
    std::cerr << "[bench] STORE DEMO MISMATCH: archive differs across the "
                 "restart\n";
    return 1;
  }
  if (recovered.entries_recovered != before.entries) {
    std::cerr << "[bench] STORE DEMO MISMATCH: recovered "
              << recovered.entries_recovered << " entries, expected "
              << before.entries << "\n";
    return 1;
  }
  if (after.store_misses != 0) {
    // Every digest of the identical input was spilled by run 1, so a fresh
    // store that replayed the segments must answer hit for all of them.
    std::cerr << "[bench] STORE DEMO MISMATCH: " << after.store_misses
              << " store misses after recovery (expected 0)\n";
    return 1;
  }
  std::cout << "  archive identical across restart, all digests recovered: "
               "OK\n";
  return 0;
}

/// --functional rows: the real archivers, measured wall time on this host
/// (the modeled table above stays byte-identical whether or not these
/// run). Sequential is the reference; the SPar-CPU variant runs with the
/// requested farm sizes / pinning / hash ordering. Returns 0 on success.
int run_functional(const std::vector<datagen::CorpusKind>& kinds,
                   std::uint64_t input_size, dedup::DedupConfig config,
                   const CliArgs& args) {
  auto workers_hash_or = args.get_positive_int("workers-hash", 4);
  auto workers_compress_or = args.get_positive_int("workers-compress", 4);
  auto reps_or = args.get_positive_int("functional-reps", 3);
  for (const Status& s : {workers_hash_or.status(),
                          workers_compress_or.status(), reps_or.status()}) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  dedup::SparCpuOptions opts;
  opts.workers_hash = static_cast<int>(workers_hash_or.value());
  opts.workers_compress = static_cast<int>(workers_compress_or.value());
  opts.hash_ordered = !args.get_bool("hash-unordered", false);
  opts.pin.enabled = args.get_bool("pin", false);
  const int reps = static_cast<int>(reps_or.value());

  std::string spar_label = "SPar CPU (functional, hash x" +
                           std::to_string(opts.workers_hash) + ", lzss x" +
                           std::to_string(opts.workers_compress) + ")";
  if (!opts.hash_ordered) spar_label += " unordered-hash";
  if (opts.pin.enabled) spar_label += " pinned";

  Table table("Functional archivers — measured wall time (best of " +
              std::to_string(reps) + ", simd=" +
              std::string(kernels::simd::level_name(
                  kernels::simd::active_level())) +
              ")");
  table.set_header({"dataset", "version", "time", "throughput"});

  for (datagen::CorpusKind kind : kinds) {
    datagen::CorpusSpec spec;
    spec.kind = kind;
    spec.bytes = input_size;
    const std::vector<std::uint8_t> input = datagen::generate(spec);
    const std::string dataset(datagen::corpus_name(kind));

    const auto measure = [&](auto&& archiver)
        -> Result<std::pair<double, std::vector<std::uint8_t>>> {
      double best = 1e300;
      std::vector<std::uint8_t> archive;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        auto out = archiver();
        const auto t1 = std::chrono::steady_clock::now();
        HS_RETURN_IF_ERROR(out.status());
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
        if (r == 0) archive = std::move(out).value();
      }
      return std::make_pair(best, std::move(archive));
    };
    const auto add = [&](const std::string& label, double seconds) {
      table.add_row({dataset, label, format_seconds(seconds),
                     format_fixed(input_size / 1e6 / seconds, 1) + " MB/s"});
    };

    auto seq = measure(
        [&] { return dedup::archive_sequential(input, config); });
    if (!seq.ok()) {
      std::cerr << "[bench] functional sequential failed: "
                << seq.status().ToString() << "\n";
      return 1;
    }
    add("sequential (functional)", seq.value().first);

    auto spar = measure(
        [&] { return dedup::archive_spar_cpu(input, config, opts); });
    if (!spar.ok()) {
      std::cerr << "[bench] functional SPar CPU failed: "
                << spar.status().ToString() << "\n";
      return 1;
    }
    add(spar_label, spar.value().first);

    if (spar.value().second != seq.value().second) {
      std::cerr << "[bench] FUNCTIONAL MISMATCH: SPar CPU archive differs "
                   "from the sequential reference ("
                << dataset << ")\n";
      return 1;
    }
  }
  std::cout << "\n";
  table.render(std::cout);
  std::cout << "functional archives verified (byte-identical to the "
               "sequential reference).\n";
  return 0;
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  const std::uint64_t input_size =
      args.get_bytes("input-size", 16 * 1000 * 1000);

  std::vector<datagen::CorpusKind> kinds;
  if (args.has("dataset")) {
    auto kind = datagen::parse_corpus_kind(args.get_string("dataset", ""));
    if (!kind.ok()) {
      std::cerr << kind.status().ToString() << "\n";
      return 1;
    }
    kinds.push_back(kind.value());
  } else {
    kinds = {datagen::CorpusKind::kParsecLike,
             datagen::CorpusKind::kSourceLike,
             datagen::CorpusKind::kSilesiaLike};
  }

  auto replicas_or = args.get_positive_int("replicas", 19);
  // Default batch size 256 KiB instead of the paper's 1 MB so the default
  // 16 MB inputs still produce enough batches (64) to feed 19 replicas —
  // the paper's 185-816 MB inputs had 185+ one-MB batches. Full-size runs:
  // --input-size=185MB --batch-size=1MiB.
  auto batch_size_or = args.get_positive_bytes("batch-size", 256 * 1024);
  auto devices_or = args.get_positive_int("devices", 2);
  auto sched_or = sched::parse_sched_mode(args.get_string("sched", "static"));
  for (const Status& s : {replicas_or.status(), batch_size_or.status(),
                          devices_or.status(), sched_or.status()}) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  const sched::SchedMode sched_mode = sched_or.value();

  Fig5Config cfg;
  cfg.replicas = static_cast<int>(replicas_or.value());
  cfg.dedup.batch_size = static_cast<std::uint32_t>(batch_size_or.value());
  cfg.dedup.rabin.mask = 0x7FF;  // ~2 kB blocks

  // Match-finder selection. Legacy is the default here: the figure rows
  // are modeled against the paper's brute-force FindMatch cost model, and
  // the functional cross-checks pin the legacy goldens. --lzss=chain runs
  // the shipped hash-chain matcher instead (functional rows only get
  // faster; archives re-golden).
  const std::string lzss_name = args.get_string("lzss", "legacy");
  kernels::LzssMode lzss_mode;
  if (!kernels::parse_lzss_mode(lzss_name, lzss_mode)) {
    std::cerr << "unknown --lzss='" << lzss_name
              << "' (expected legacy|chain)\n";
    return 1;
  }
  cfg.dedup.lzss.mode = lzss_mode;
  if (lzss_mode == kernels::LzssMode::kChain) {
    cfg.dedup.lzss.window_size = 4096;  // tuned chain config
    cfg.dedup.lzss.chain_depth = 2;
  }

  bool csv = args.get_bool("csv", false);
  const std::string json_path = args.get_string("json", "");
  struct JsonRow {
    std::string dataset;
    std::string label;
    double modeled_seconds;
    double throughput_mb_s;
    std::uint64_t kernel_launches;
  };
  std::vector<JsonRow> json_rows;

  for (datagen::CorpusKind kind : kinds) {
    datagen::CorpusSpec spec;
    spec.kind = kind;
    spec.bytes = input_size;
    std::fprintf(stderr, "[bench] generating %s corpus (%s)...\n",
                 std::string(datagen::corpus_name(kind)).c_str(),
                 format_bytes(input_size).c_str());
    auto input = datagen::generate(spec);
    auto profile = datagen::profile(input);
    std::fprintf(stderr,
                 "[bench] duplicates=%.0f%% lzss-ratio=%.2f; tracing...\n",
                 profile.duplicate_block_fraction * 100, profile.lzss_ratio);
    dedup::DedupTrace trace = dedup::build_trace(input, cfg.dedup);
    const bool variable = args.get_bool("variable-batches", false);
    dedup::DedupTrace var_trace;
    if (variable) {
      var_trace = dedup::build_trace(input, cfg.dedup, true);
    }

    Table table("Fig. 5 — Dedup throughput, " +
                std::string(datagen::corpus_name(kind)) + " (" +
                format_bytes(input_size) + ", " +
                format_fixed(profile.duplicate_block_fraction * 100, 0) +
                "% duplicate blocks)");
    table.set_header({"version", "modeled time", "throughput", "kernels"});

    auto add = [&](const Fig5Config& c, Fig5Backend backend) {
      Fig5Result r = run_fig5(trace, c, backend);
      table.add_row({r.label, format_seconds(r.modeled_seconds),
                     format_fixed(r.throughput_mb_s, 1) + " MB/s",
                     r.kernel_launches ? std::to_string(r.kernel_launches)
                                       : "-"});
      json_rows.push_back({std::string(datagen::corpus_name(kind)), r.label,
                           r.modeled_seconds, r.throughput_mb_s,
                           r.kernel_launches});
    };

    add(cfg, Fig5Backend::kSequential);
    add(cfg, Fig5Backend::kSparCpu);
    table.add_separator();
    // The pre-optimization versions: one FindMatch kernel per block.
    {
      Fig5Config c = cfg;
      c.batched_kernel = false;
      add(c, Fig5Backend::kCudaSingle);
      add(c, Fig5Backend::kOclSingle);
      add(c, Fig5Backend::kSparCuda);
      add(c, Fig5Backend::kSparOcl);
    }
    table.add_separator();
    // Batch-optimized, 1x memory space.
    add(cfg, Fig5Backend::kCudaSingle);
    add(cfg, Fig5Backend::kOclSingle);
    add(cfg, Fig5Backend::kSparCuda);
    add(cfg, Fig5Backend::kSparOcl);
    table.add_separator();
    // Batch-optimized, 2x memory spaces.
    {
      Fig5Config c = cfg;
      c.mem_spaces = 2;
      add(c, Fig5Backend::kCudaSingle);
      add(c, Fig5Backend::kOclSingle);
      add(c, Fig5Backend::kSparCuda);
      add(c, Fig5Backend::kSparOcl);
    }
    if (variable) {
      table.add_separator();
      // DESIGN.md §4.3 ablation: PARSEC's original variable-size batches
      // (content-defined boundaries) instead of the fixed-size refactor.
      Fig5Result r = run_fig5(var_trace, cfg, Fig5Backend::kSparCuda);
      table.add_row({r.label + " variable-batches",
                     format_seconds(r.modeled_seconds),
                     format_fixed(r.throughput_mb_s, 1) + " MB/s",
                     std::to_string(r.kernel_launches)});
      json_rows.push_back({std::string(datagen::corpus_name(kind)),
                           r.label + " variable-batches", r.modeled_seconds,
                           r.throughput_mb_s, r.kernel_launches});
    }
    table.add_separator();
    // Multi-GPU (combined versions only, as in the paper).
    {
      Fig5Config c = cfg;
      c.devices = static_cast<int>(devices_or.value());
      add(c, Fig5Backend::kSparCuda);
      add(c, Fig5Backend::kSparOcl);
    }
    if (sched_mode == sched::SchedMode::kAdaptive) {
      table.add_separator();
      // Adaptive dispatch: batches go to the memory space whose device
      // frees up earliest instead of the replica's round-robin binding.
      // Single- and multi-GPU, so the single-GPU rows isolate the cost of
      // dynamic selection and the multi-GPU rows its benefit.
      {
        Fig5Config c = cfg;
        c.sched = sched::SchedMode::kAdaptive;
        add(c, Fig5Backend::kSparCuda);
        add(c, Fig5Backend::kSparOcl);
        c.devices = static_cast<int>(devices_or.value());
        add(c, Fig5Backend::kSparCuda);
        add(c, Fig5Backend::kSparOcl);
      }
    }

    if (csv) {
      table.render_csv(std::cout);
    } else {
      table.render(std::cout);
      std::cout << "\n";
    }
  }
  if (!csv) {
    std::cout << "paper findings reproduced: the batch optimization "
                 "dominates; SPar+CUDA is best overall; 2x memory spaces "
                 "help OpenCL but not CUDA (realloc'd buffers cannot be "
                 "page-locked).\n";
  }
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "[bench] cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"fig5_dedup_throughput\",\n";
    json << "  \"input_bytes\": " << input_size << ",\n";
    json << "  \"replicas\": " << cfg.replicas << ",\n";
    json << "  \"batch_size\": " << cfg.dedup.batch_size << ",\n";
    json << "  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      json << "    {\"dataset\": \"" << r.dataset << "\", \"label\": \""
           << r.label << "\", \"modeled_seconds\": " << r.modeled_seconds
           << ", \"throughput_mb_s\": " << r.throughput_mb_s
           << ", \"kernel_launches\": " << r.kernel_launches << "}"
           << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "[bench] json written to %s\n", json_path.c_str());
  }
  const bool functional =
      args.get_bool("functional", false) || args.has("workers-hash") ||
      args.has("workers-compress") || args.has("pin") ||
      args.has("hash-unordered");
  if (functional) {
    if (int rc = run_functional(kinds, input_size, cfg.dedup, args); rc != 0) {
      return rc;
    }
  }
  if (const std::string dir = args.get_string("store", ""); !dir.empty()) {
    if (int rc = run_store_demo(dir, cfg.dedup); rc != 0) {
      return rc;
    }
  }
  if (const std::string spec = args.get_string("faults", ""); !spec.empty()) {
    if (int rc = run_fault_demo(spec, cfg.dedup, sched_mode); rc != 0) {
      return rc;
    }
  }
  if (const auto outs = benchtool::telemetry_outputs(args); outs.active()) {
    if (int rc = run_telemetry_demo(outs, cfg.dedup, sched_mode); rc != 0) {
      return rc;
    }
  }
  return 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
