// Fig. 5 reproduction: "Dedup results" — throughput (MB/s) of every
// parallel version on three datasets.
//
// Datasets are the synthetic stand-ins of DESIGN.md §2 (the paper used
// PARSEC's 185 MB native input, an 816 MB Linux source tree, and the
// 202 MB Silesia corpus; generation is deterministic and the size is
// scaled by --input-size, default 16 MB, so the whole figure regenerates in
// about a minute — pass --input-size=185MB etc. for full-size runs).
//
// Rows per dataset: SPar CPU-only; CUDA/OpenCL single-threaded and
// SPar+CUDA / SPar+OpenCL — each without the batch optimization
// ("per-block kernels", the paper's very poor first attempt), with it, and
// with 2x memory spaces; plus SPar+GPU on 2 GPUs.
//
// Flags: --input-size=BYTES | --dataset=parsec|source|silesia (default:
//        all) | --replicas=N (19) | --batch-size=BYTES (1MiB) | --csv
//        --json=PATH (also write every row — dataset, label, modeled time,
//        throughput, kernel launches — as machine-readable JSON, e.g.
//        BENCH_fig5.json, so the perf trajectory is tracked across PRs)
//        --faults=SPEC (run the functional SPar+CUDA archiver under an
//        injected fault plan — spec grammar in gpusim/fault_plan.hpp, e.g.
//        "alloc.p=0.2,lost.nth=40" — and verify the archive still extracts
//        to the bit-exact input)
//        --trace=FILE --metrics=FILE (run the functional SPar+CUDA archiver
//        with runtime telemetry on and export a Chrome trace — per-stage +
//        H2D/kernel/D2H spans, viewable in ui.perfetto.dev — and/or a
//        metrics dump: .json gets JSON, anything else Prometheus text)
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/modeled.hpp"
#include "dedup/pipelines.hpp"
#include "gpusim/fault_plan.hpp"

namespace hs {
namespace {

using dedup::Fig5Backend;
using dedup::Fig5Config;
using dedup::Fig5Result;

/// --faults demo: the real (functional) SPar+CUDA archiver under an
/// injected fault plan must still produce an archive whose extraction is
/// bit-exact against the input. Returns 0 on success.
int run_fault_demo(const std::string& spec, dedup::DedupConfig config) {
  auto plan = gpusim::FaultPlan::Parse(spec);
  if (!plan.ok()) {
    std::cerr << "[bench] bad --faults spec: " << plan.status().ToString()
              << "\n";
    return 1;
  }
  // The functional archiver computes SHA1/LZSS for real; keep it modest.
  datagen::CorpusSpec corpus;
  corpus.kind = datagen::CorpusKind::kParsecLike;
  corpus.bytes = 2 * 1000 * 1000;
  const std::vector<std::uint8_t> input = datagen::generate(corpus);
  config.batch_size = std::min<std::uint32_t>(config.batch_size, 256 * 1024);

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  for (int d = 0; d < machine->device_count(); ++d) {
    machine->device(d).set_fault_plan(plan.value());
  }
  cudax::bind_machine(machine.get());
  RetryStats stats;
  auto archive = dedup::archive_spar_cuda(input, config, 4, *machine, &stats);
  cudax::unbind_machine();

  std::cout << "\n--faults=" << spec << " ("
            << format_bytes(corpus.bytes)
            << " parsec-like input, functional SPar+CUDA archiver)\n";
  for (int d = 0; d < machine->device_count(); ++d) {
    std::cout << "  device " << d << ": "
              << machine->device(d).fault_telemetry().ToString() << "\n";
  }
  std::cout << "  recovery: " << stats.ToString() << "\n";
  if (!archive.ok()) {
    std::cerr << "[bench] faulty archive run failed: "
              << archive.status().ToString() << "\n";
    return 1;
  }
  auto clean = dedup::archive_sequential(input, config);
  if (!clean.ok() || archive.value() != clean.value()) {
    std::cerr << "[bench] FAULT DEMO MISMATCH: archive differs from "
                 "fault-free run\n";
    return 1;
  }
  auto roundtrip = dedup::extract(archive.value());
  if (!roundtrip.ok() || roundtrip.value() != input) {
    std::cerr << "[bench] FAULT DEMO MISMATCH: archive does not extract to "
                 "the input\n";
    return 1;
  }
  std::cout << "  archive bit-exact and extracts to the input: OK\n";
  return 0;
}

/// --trace/--metrics demo: the real (functional) SPar+CUDA archiver with
/// the process-wide telemetry singletons capturing, exported to the
/// requested files. Returns 0 on success.
int run_telemetry_demo(const benchtool::TelemetryOutputs& outs,
                       dedup::DedupConfig config) {
  datagen::CorpusSpec corpus;
  corpus.kind = datagen::CorpusKind::kParsecLike;
  corpus.bytes = 2 * 1000 * 1000;
  const std::vector<std::uint8_t> input = datagen::generate(corpus);
  config.batch_size = std::min<std::uint32_t>(config.batch_size, 256 * 1024);

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  benchtool::begin_telemetry_capture(outs);
  auto archive = dedup::archive_spar_cuda(input, config, 4, *machine);
  int rc = benchtool::end_telemetry_capture(outs);
  cudax::unbind_machine();
  if (!archive.ok()) {
    std::cerr << "[bench] telemetry demo run failed: "
              << archive.status().ToString() << "\n";
    return 1;
  }
  return rc;
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  const std::uint64_t input_size =
      args.get_bytes("input-size", 16 * 1000 * 1000);

  std::vector<datagen::CorpusKind> kinds;
  if (args.has("dataset")) {
    auto kind = datagen::parse_corpus_kind(args.get_string("dataset", ""));
    if (!kind.ok()) {
      std::cerr << kind.status().ToString() << "\n";
      return 1;
    }
    kinds.push_back(kind.value());
  } else {
    kinds = {datagen::CorpusKind::kParsecLike,
             datagen::CorpusKind::kSourceLike,
             datagen::CorpusKind::kSilesiaLike};
  }

  Fig5Config cfg;
  cfg.replicas = static_cast<int>(args.get_int("replicas", 19));
  // Default batch size 256 KiB instead of the paper's 1 MB so the default
  // 16 MB inputs still produce enough batches (64) to feed 19 replicas —
  // the paper's 185-816 MB inputs had 185+ one-MB batches. Full-size runs:
  // --input-size=185MB --batch-size=1MiB.
  cfg.dedup.batch_size =
      static_cast<std::uint32_t>(args.get_bytes("batch-size", 256 * 1024));
  cfg.dedup.rabin.mask = 0x7FF;  // ~2 kB blocks

  bool csv = args.get_bool("csv", false);
  const std::string json_path = args.get_string("json", "");
  struct JsonRow {
    std::string dataset;
    std::string label;
    double modeled_seconds;
    double throughput_mb_s;
    std::uint64_t kernel_launches;
  };
  std::vector<JsonRow> json_rows;

  for (datagen::CorpusKind kind : kinds) {
    datagen::CorpusSpec spec;
    spec.kind = kind;
    spec.bytes = input_size;
    std::fprintf(stderr, "[bench] generating %s corpus (%s)...\n",
                 std::string(datagen::corpus_name(kind)).c_str(),
                 format_bytes(input_size).c_str());
    auto input = datagen::generate(spec);
    auto profile = datagen::profile(input);
    std::fprintf(stderr,
                 "[bench] duplicates=%.0f%% lzss-ratio=%.2f; tracing...\n",
                 profile.duplicate_block_fraction * 100, profile.lzss_ratio);
    dedup::DedupTrace trace = dedup::build_trace(input, cfg.dedup);
    const bool variable = args.get_bool("variable-batches", false);
    dedup::DedupTrace var_trace;
    if (variable) {
      var_trace = dedup::build_trace(input, cfg.dedup, true);
    }

    Table table("Fig. 5 — Dedup throughput, " +
                std::string(datagen::corpus_name(kind)) + " (" +
                format_bytes(input_size) + ", " +
                format_fixed(profile.duplicate_block_fraction * 100, 0) +
                "% duplicate blocks)");
    table.set_header({"version", "modeled time", "throughput", "kernels"});

    auto add = [&](const Fig5Config& c, Fig5Backend backend) {
      Fig5Result r = run_fig5(trace, c, backend);
      table.add_row({r.label, format_seconds(r.modeled_seconds),
                     format_fixed(r.throughput_mb_s, 1) + " MB/s",
                     r.kernel_launches ? std::to_string(r.kernel_launches)
                                       : "-"});
      json_rows.push_back({std::string(datagen::corpus_name(kind)), r.label,
                           r.modeled_seconds, r.throughput_mb_s,
                           r.kernel_launches});
    };

    add(cfg, Fig5Backend::kSequential);
    add(cfg, Fig5Backend::kSparCpu);
    table.add_separator();
    // The pre-optimization versions: one FindMatch kernel per block.
    {
      Fig5Config c = cfg;
      c.batched_kernel = false;
      add(c, Fig5Backend::kCudaSingle);
      add(c, Fig5Backend::kOclSingle);
      add(c, Fig5Backend::kSparCuda);
      add(c, Fig5Backend::kSparOcl);
    }
    table.add_separator();
    // Batch-optimized, 1x memory space.
    add(cfg, Fig5Backend::kCudaSingle);
    add(cfg, Fig5Backend::kOclSingle);
    add(cfg, Fig5Backend::kSparCuda);
    add(cfg, Fig5Backend::kSparOcl);
    table.add_separator();
    // Batch-optimized, 2x memory spaces.
    {
      Fig5Config c = cfg;
      c.mem_spaces = 2;
      add(c, Fig5Backend::kCudaSingle);
      add(c, Fig5Backend::kOclSingle);
      add(c, Fig5Backend::kSparCuda);
      add(c, Fig5Backend::kSparOcl);
    }
    if (variable) {
      table.add_separator();
      // DESIGN.md §4.3 ablation: PARSEC's original variable-size batches
      // (content-defined boundaries) instead of the fixed-size refactor.
      Fig5Result r = run_fig5(var_trace, cfg, Fig5Backend::kSparCuda);
      table.add_row({r.label + " variable-batches",
                     format_seconds(r.modeled_seconds),
                     format_fixed(r.throughput_mb_s, 1) + " MB/s",
                     std::to_string(r.kernel_launches)});
      json_rows.push_back({std::string(datagen::corpus_name(kind)),
                           r.label + " variable-batches", r.modeled_seconds,
                           r.throughput_mb_s, r.kernel_launches});
    }
    table.add_separator();
    // Multi-GPU (combined versions only, as in the paper).
    {
      Fig5Config c = cfg;
      c.devices = static_cast<int>(args.get_int("devices", 2));
      add(c, Fig5Backend::kSparCuda);
      add(c, Fig5Backend::kSparOcl);
    }

    if (csv) {
      table.render_csv(std::cout);
    } else {
      table.render(std::cout);
      std::cout << "\n";
    }
  }
  if (!csv) {
    std::cout << "paper findings reproduced: the batch optimization "
                 "dominates; SPar+CUDA is best overall; 2x memory spaces "
                 "help OpenCL but not CUDA (realloc'd buffers cannot be "
                 "page-locked).\n";
  }
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "[bench] cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"fig5_dedup_throughput\",\n";
    json << "  \"input_bytes\": " << input_size << ",\n";
    json << "  \"replicas\": " << cfg.replicas << ",\n";
    json << "  \"batch_size\": " << cfg.dedup.batch_size << ",\n";
    json << "  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      json << "    {\"dataset\": \"" << r.dataset << "\", \"label\": \""
           << r.label << "\", \"modeled_seconds\": " << r.modeled_seconds
           << ", \"throughput_mb_s\": " << r.throughput_mb_s
           << ", \"kernel_launches\": " << r.kernel_launches << "}"
           << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "[bench] json written to %s\n", json_path.c_str());
  }
  if (const std::string spec = args.get_string("faults", ""); !spec.empty()) {
    if (int rc = run_fault_demo(spec, cfg.dedup); rc != 0) return rc;
  }
  if (const auto outs = benchtool::telemetry_outputs(args); outs.active()) {
    if (int rc = run_telemetry_demo(outs, cfg.dedup); rc != 0) return rc;
  }
  return 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
