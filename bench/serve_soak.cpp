// Chaos-soak harness for the serve layer: open-loop Poisson/bursty load
// against the multi-tenant Service, with fault injection and the adaptive
// scheduler running simultaneously.
//
// Three phases:
//   1. calibrate — closed-loop measurement of the per-job service time on a
//      clean machine; saturation ~= workers / t_job.
//   2. curve     — open-loop runs at 0.25x..2x saturation, recording the
//      tail latency of accepted jobs plus shed / deadline-miss counts
//      (the tail-latency-vs-offered-load curve).
//   3. soak      — --duration seconds at 2x saturation with --faults
//      injected on every device for the first 70% of the run (the chaos
//      window), then cleared so tripped breakers must recover to closed.
//
// Exit is non-zero when the soak violates its envelope: pipeline failure,
// breaker stuck open after the chaos window, no shedding at 2x overload,
// or an unbounded accepted-job p99. Results land in --json (default
// BENCH_serve.json); --trace/--metrics capture the usual telemetry.
//
// Examples:
//   serve_soak --quick
//   serve_soak --duration=30 --faults=launch.p=0.02,alloc.p=0.01 \
//              --sched=adaptive --json=BENCH_serve.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault_plan.hpp"
#include "serve/service.hpp"

namespace hs {
namespace {

using Clock = std::chrono::steady_clock;

struct SoakOptions {
  int devices = 2;
  int workers = 4;
  int tenants = 3;
  double duration_s = 10.0;       ///< soak phase
  double curve_point_s = 1.0;     ///< per curve point
  bool skip_curve = false;
  bool skip_elastic = false;      ///< skip the elastic-vs-fixed comparison
  double elastic_phase_s = 0;     ///< per elastic phase; 0 = auto
  std::string faults;             ///< FaultPlan spec applied to every device
  double fault_window = 0.7;      ///< fraction of the soak with faults live
  sched::SchedMode sched = sched::SchedMode::kStatic;
  bool bursty = false;            ///< Poisson bursts of `burst` arrivals
  int burst = 8;
  int dim = 32;                   ///< mandel job frame
  int niter = 300;
  std::uint64_t payload_bytes = 48 * 1024;  ///< dedup job input
  double deadline_ms = 0;         ///< 0 = auto (20x calibrated job time)
  std::uint64_t seed = 42;
  std::string json_path = "BENCH_serve.json";
};

struct PhaseResult {
  double offered_mult = 0;   ///< offered load as a multiple of saturation
  double offered_rate = 0;   ///< jobs/s
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_miss = 0;
  std::uint64_t cpu_jobs = 0;
  std::uint64_t breaker_trips = 0;
  int breakers_open_end = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  std::string failure;
};

serve::JobRequest make_job(const SoakOptions& opt,
                           const std::vector<std::uint8_t>& payload,
                           std::uint64_t n) {
  serve::JobRequest req;
  if (n % 2 == 0) {
    req.kind = serve::JobKind::kMandel;
    req.mandel.dim = opt.dim;
    req.mandel.niter = opt.niter;
  } else {
    req.kind = serve::JobKind::kDedup;
    req.payload = payload;
    req.dedup.batch_size = 16 * 1024;
  }
  return req;
}

serve::ServiceConfig service_config(const SoakOptions& opt,
                                    telemetry::Registry* reg,
                                    std::uint64_t deadline_ns) {
  serve::ServiceConfig cfg;
  cfg.workers = opt.workers;
  cfg.sched = opt.sched;
  cfg.registry = reg;
  cfg.default_deadline_ns = deadline_ns;
  // Keep total standing work (tenant watermarks + flow queue) below what
  // the deadline budget can absorb, so queue-depth admission control — not
  // just deadline expiry — is what bounds the backlog under overload.
  cfg.tenant_queue_capacity = 16;
  cfg.queue_capacity = static_cast<std::size_t>(opt.workers) * 4;
  // Latency watermark: shed while the windowed p99 exceeds the deadline
  // budget (the point where accepted work is mostly wasted anyway).
  cfg.p99_shed_budget_ns = deadline_ns;
  cfg.retry.base_delay = std::chrono::microseconds(20);
  cfg.retry.max_delay = std::chrono::microseconds(2000);
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.cooldown = std::chrono::milliseconds(5);
  return cfg;
}

/// Closed-loop: measures the mean per-job wall time on a clean machine.
double calibrate_job_seconds(const SoakOptions& opt,
                             const std::vector<std::uint8_t>& payload) {
  auto machine = gpusim::Machine::Create(opt.devices,
                                         gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  serve::Service service(machine.get(), service_config(opt, &reg, 0));
  if (!service.start().ok()) {
    std::fprintf(stderr, "[soak] calibrate: service failed to start\n");
    std::exit(1);
  }
  constexpr int kJobs = 16;
  const auto t0 = Clock::now();
  for (int i = 0; i < kJobs; ++i) {
    auto r = service.submit("calibrate",
                            make_job(opt, payload,
                                     static_cast<std::uint64_t>(i)));
    if (!r.accepted()) {
      std::fprintf(stderr, "[soak] calibrate: submission rejected\n");
      std::exit(1);
    }
    (void)r.result.get();
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  (void)service.stop();
  cudax::unbind_machine();
  return dt.count() / kJobs;
}

/// Open-loop phase driver: Poisson (or bursty) arrivals at `rate` jobs/s
/// for `seconds`, against a fresh machine. `fault_spec` (if any) is armed
/// on every device and cleared after `fault_window` of the phase.
PhaseResult run_open_loop(const SoakOptions& opt,
                          const std::vector<std::uint8_t>& payload,
                          double rate, double seconds,
                          const std::string& fault_spec, double fault_window,
                          std::uint64_t deadline_ns, const char* label) {
  PhaseResult out;
  out.offered_rate = rate;
  auto machine = gpusim::Machine::Create(opt.devices,
                                         gpusim::DeviceSpec::TitanXP());
  if (!fault_spec.empty()) {
    for (int d = 0; d < machine->device_count(); ++d) {
      // Decorrelate the per-device fault streams unless the spec pins one.
      std::string spec = fault_spec;
      if (spec.find("seed=") == std::string::npos) {
        spec = "seed=" + std::to_string(opt.seed + 100 + static_cast<std::uint64_t>(d)) +
               "," + spec;
      }
      auto plan = gpusim::FaultPlan::Parse(spec);
      if (!plan.ok()) {
        std::fprintf(stderr, "[soak] bad --faults spec: %s\n",
                     plan.status().ToString().c_str());
        std::exit(1);
      }
      machine->device(d).set_fault_plan(std::move(plan).value());
    }
  }
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  serve::Service service(machine.get(),
                         service_config(opt, &reg, deadline_ns));
  if (!service.start().ok()) {
    std::fprintf(stderr, "[soak] %s: service failed to start\n", label);
    std::exit(1);
  }

  Xoshiro256 rng(opt.seed ^ 0x5048415345ull);
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(seconds));
  const auto chaos_end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds * fault_window));
  bool chaos_cleared = fault_spec.empty();
  double next_arrival = 0;  // seconds since start
  std::uint64_t n = 0;
  while (Clock::now() < deadline) {
    if (!chaos_cleared && Clock::now() >= chaos_end) {
      // Close the chaos window: the remaining run must let every tripped
      // breaker probe its device back to closed.
      for (int d = 0; d < machine->device_count(); ++d) {
        machine->device(d).clear_fault_plan();
      }
      chaos_cleared = true;
    }
    const int arrivals = opt.bursty ? opt.burst : 1;
    for (int k = 0; k < arrivals; ++k) {
      const std::string tenant =
          "tenant-" + std::to_string(n % static_cast<std::uint64_t>(opt.tenants));
      auto r = service.submit(tenant, make_job(opt, payload, n),
                              /*want_result=*/false);
      (void)r;
      ++n;
    }
    // Poisson inter-arrival for the next batch (bursty mode stretches the
    // gap by the burst size so the mean offered rate stays `rate`).
    const double u = std::max(rng.uniform(), 1e-12);
    next_arrival += -std::log(u) / rate * arrivals;
    const auto wake = start + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(next_arrival));
    std::this_thread::sleep_until(std::min(wake, deadline));
  }
  Status run = service.stop();
  cudax::unbind_machine();

  const auto stats = service.stats();
  out.submitted = stats.submitted;
  out.accepted = stats.accepted;
  out.shed = stats.shed;
  out.completed = stats.completed;
  out.deadline_miss = stats.deadline_miss;
  out.cpu_jobs = stats.cpu_jobs;
  out.breaker_trips = stats.breaker_trips;
  out.breakers_open_end = stats.breakers_open;
  const auto lat = service.latency();
  out.p50_ms = lat.p50() / 1e6;
  out.p95_ms = lat.p95() / 1e6;
  out.p99_ms = lat.p99() / 1e6;
  if (!run.ok()) out.failure = run.ToString();
  const std::string stage_failures = service.failure_summary();
  if (!stage_failures.empty()) {
    out.failure += out.failure.empty() ? stage_failures : "; " + stage_failures;
  }
  std::fprintf(stderr,
               "[soak] %-10s rate=%7.1f/s submitted=%llu accepted=%llu "
               "shed=%llu miss=%llu cpu=%llu trips=%llu open@end=%d "
               "p99=%.2fms\n",
               label, rate, static_cast<unsigned long long>(out.submitted),
               static_cast<unsigned long long>(out.accepted),
               static_cast<unsigned long long>(out.shed),
               static_cast<unsigned long long>(out.deadline_miss),
               static_cast<unsigned long long>(out.cpu_jobs),
               static_cast<unsigned long long>(out.breaker_trips),
               out.breakers_open_end, out.p99_ms);
  return out;
}

/// One load phase of the elastic-vs-fixed comparison.
struct ElasticPhaseResult {
  std::string name;
  double offered_mult = 0;
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  double mean_workers = 0;  ///< sampled stats().workers_active over the phase
  double p99_ms = 0;        ///< completions within the phase window
};

/// One full trough/peak/trough run of a single service configuration.
struct ElasticLegResult {
  std::vector<ElasticPhaseResult> phases;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::string failure;
};

/// The elastic legs run kSynthetic jobs: each occupies its worker for a
/// fixed wall-clock duration, so farm capacity is exactly
/// workers / duration on any host — real-execution jobs (mandel/dedup)
/// are compute-bound on this machine's cores, where adding farm workers
/// beyond the core count adds buffering, not throughput, and the
/// elastic-vs-fixed comparison would measure the scheduler, not the farm.
constexpr std::uint64_t kElasticJobNs = 2'000'000;  // 2ms

serve::JobRequest make_synthetic_job() {
  serve::JobRequest req;
  req.kind = serve::JobKind::kSynthetic;
  req.synthetic_ns = kElasticJobNs;
  return req;
}

/// Elastic leg: one service lives through a trough(0.3x) / peak(2x) /
/// trough(0.3x) offered-load curve — the same curve for the fixed-farm
/// baseline and the elastic farm, so their peak p99 and trough worker
/// counts are directly comparable. The service is CPU-only (no machine)
/// and the jobs are synthetic worker-blocking sleeps, so capacity is
/// proportional to fed workers and the farm resize — not device or core
/// contention — is what the p99 measures. Deadlines and the p99 admission
/// gate are off (the tenant queue caps still bound the backlog): the
/// measured p99 reflects queueing + service time, not which jobs admission
/// let through.
ElasticLegResult run_elastic_leg(const SoakOptions& opt,
                                 const std::vector<std::uint8_t>& payload,
                                 double saturation, bool elastic,
                                 double phase_seconds) {
  (void)payload;
  ElasticLegResult out;
  telemetry::Registry reg;
  serve::ServiceConfig cfg = service_config(opt, &reg, 0);
  cfg.p99_shed_budget_ns = 0;
  if (elastic) {
    cfg.scale.min_workers = 1;
    cfg.scale.max_workers = 2 * opt.workers;
    cfg.scale.scale_up_watermark = 8;
    // Windows sized well under a phase so several grow steps fit in the
    // peak and the farm can walk back down within one trough.
    cfg.scale.sample_interval = std::chrono::milliseconds(2);
    cfg.scale.sample_window = std::chrono::milliseconds(20);
    cfg.scale.scale_down_idle_window = std::chrono::milliseconds(100);
    cfg.scale.cooldown = std::chrono::milliseconds(40);
  }
  serve::Service service(nullptr, cfg);
  if (!service.start().ok()) {
    std::fprintf(stderr, "[soak] elastic: service failed to start\n");
    std::exit(1);
  }

  struct PhaseSpec {
    const char* name;
    double mult;
  };
  const PhaseSpec specs[3] = {{"trough", 0.3}, {"peak", 2.0},
                              {"cooldown", 0.3}};

  // Worker-count sampler: the phase mean is what the shrink gate checks
  // (fixed farms sample flat at opt.workers).
  struct WorkerAcc {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> samples{0};
  };
  WorkerAcc acc[3];
  std::atomic<int> phase_index{-1};
  std::atomic<bool> sampler_stop{false};
  std::thread sampler([&] {
    while (!sampler_stop.load(std::memory_order_acquire)) {
      const int ph = phase_index.load(std::memory_order_relaxed);
      if (ph >= 0 && ph < 3) {
        acc[ph].sum.fetch_add(
            static_cast<std::uint64_t>(service.stats().workers_active),
            std::memory_order_relaxed);
        acc[ph].samples.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  Xoshiro256 rng(opt.seed ^ 0x454c4153544943ull);
  telemetry::HistogramSnapshot lat_base = service.latency();
  std::uint64_t n = 0;
  for (int ph = 0; ph < 3; ++ph) {
    const double rate = saturation * specs[ph].mult;
    const std::uint64_t sub0 = service.stats().submitted;
    const std::uint64_t shed0 = service.stats().shed;
    phase_index.store(ph, std::memory_order_relaxed);
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(phase_seconds));
    double next_arrival = 0;
    while (Clock::now() < deadline) {
      const std::string tenant =
          "tenant-" +
          std::to_string(n % static_cast<std::uint64_t>(opt.tenants));
      (void)service.submit(tenant, make_synthetic_job(),
                           /*want_result=*/false);
      ++n;
      const double u = std::max(rng.uniform(), 1e-12);
      next_arrival += -std::log(u) / rate;
      const auto wake =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(next_arrival));
      std::this_thread::sleep_until(std::min(wake, deadline));
    }
    phase_index.store(-1, std::memory_order_relaxed);

    ElasticPhaseResult pr;
    pr.name = specs[ph].name;
    pr.offered_mult = specs[ph].mult;
    const auto stats = service.stats();
    pr.submitted = stats.submitted - sub0;
    pr.shed = stats.shed - shed0;
    const std::uint64_t samples =
        acc[ph].samples.load(std::memory_order_relaxed);
    pr.mean_workers =
        samples > 0 ? static_cast<double>(
                          acc[ph].sum.load(std::memory_order_relaxed)) /
                          static_cast<double>(samples)
                    : static_cast<double>(opt.workers);
    // Phase p99 over the completions that landed inside the phase window
    // (snapshot diff, same scheme as the service's own admission gate).
    telemetry::HistogramSnapshot window = service.latency();
    const telemetry::HistogramSnapshot snap = window;
    window.count -= lat_base.count;
    window.sum -= lat_base.sum;
    for (std::size_t b = 0; b < window.buckets.size(); ++b) {
      window.buckets[b] -= lat_base.buckets[b];
    }
    pr.p99_ms = window.count > 0 ? window.p99() / 1e6 : 0.0;
    lat_base = snap;
    out.phases.push_back(std::move(pr));
  }

  sampler_stop.store(true, std::memory_order_release);
  sampler.join();
  Status run = service.stop();

  const auto stats = service.stats();
  out.accepted = stats.accepted;
  out.completed = stats.completed;
  out.scale_ups = stats.scale_ups;
  out.scale_downs = stats.scale_downs;
  if (!run.ok()) out.failure = run.ToString();
  const std::string stage_failures = service.failure_summary();
  if (!stage_failures.empty()) {
    out.failure +=
        out.failure.empty() ? stage_failures : "; " + stage_failures;
  }
  for (const ElasticPhaseResult& pr : out.phases) {
    std::fprintf(stderr,
                 "[soak] %-10s %-8s rate=%4.1fx submitted=%llu shed=%llu "
                 "mean_workers=%.2f p99=%.2fms\n",
                 elastic ? "elastic" : "fixed", pr.name.c_str(),
                 pr.offered_mult,
                 static_cast<unsigned long long>(pr.submitted),
                 static_cast<unsigned long long>(pr.shed), pr.mean_workers,
                 pr.p99_ms);
  }
  std::fprintf(stderr, "[soak] %-10s scale_ups=%llu scale_downs=%llu\n",
               elastic ? "elastic" : "fixed",
               static_cast<unsigned long long>(out.scale_ups),
               static_cast<unsigned long long>(out.scale_downs));
  return out;
}

void write_json(const SoakOptions& opt, double job_s, double saturation,
                const std::vector<PhaseResult>& curve,
                const PhaseResult& soak, const ElasticLegResult* fixed_leg,
                const ElasticLegResult* elastic_leg) {
  FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[soak] cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  auto phase_json = [&](const PhaseResult& p) {
    std::fprintf(f,
                 "    {\"offered_mult\": %.3f, \"offered_rate\": %.2f, "
                 "\"submitted\": %llu, \"accepted\": %llu, \"shed\": %llu, "
                 "\"completed\": %llu, \"deadline_miss\": %llu, "
                 "\"cpu_jobs\": %llu, \"breaker_trips\": %llu, "
                 "\"breakers_open_end\": %d, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"failure\": \"%s\"}",
                 p.offered_mult, p.offered_rate,
                 static_cast<unsigned long long>(p.submitted),
                 static_cast<unsigned long long>(p.accepted),
                 static_cast<unsigned long long>(p.shed),
                 static_cast<unsigned long long>(p.completed),
                 static_cast<unsigned long long>(p.deadline_miss),
                 static_cast<unsigned long long>(p.cpu_jobs),
                 static_cast<unsigned long long>(p.breaker_trips),
                 p.breakers_open_end, p.p50_ms, p.p95_ms, p.p99_ms,
                 p.failure.c_str());
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_soak\",\n");
  std::fprintf(f, "  \"devices\": %d,\n  \"workers\": %d,\n", opt.devices,
               opt.workers);
  std::fprintf(f, "  \"sched\": \"%s\",\n",
               opt.sched == sched::SchedMode::kAdaptive ? "adaptive"
                                                        : "static");
  std::fprintf(f, "  \"faults\": \"%s\",\n", opt.faults.c_str());
  std::fprintf(f, "  \"bursty\": %s,\n", opt.bursty ? "true" : "false");
  std::fprintf(f, "  \"job_seconds\": %.6f,\n", job_s);
  std::fprintf(f, "  \"saturation_jobs_per_sec\": %.2f,\n", saturation);
  std::fprintf(f, "  \"curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    phase_json(curve[i]);
    std::fprintf(f, "%s\n", i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"soak\": \n");
  phase_json(soak);
  if (fixed_leg != nullptr && elastic_leg != nullptr) {
    auto leg_json = [&](const char* key, const ElasticLegResult& leg) {
      std::fprintf(f, "    \"%s\": {\"scale_ups\": %llu, "
                   "\"scale_downs\": %llu, \"accepted\": %llu, "
                   "\"completed\": %llu, \"failure\": \"%s\", "
                   "\"phases\": [\n",
                   key, static_cast<unsigned long long>(leg.scale_ups),
                   static_cast<unsigned long long>(leg.scale_downs),
                   static_cast<unsigned long long>(leg.accepted),
                   static_cast<unsigned long long>(leg.completed),
                   leg.failure.c_str());
      for (std::size_t i = 0; i < leg.phases.size(); ++i) {
        const ElasticPhaseResult& p = leg.phases[i];
        std::fprintf(f,
                     "      {\"name\": \"%s\", \"offered_mult\": %.2f, "
                     "\"submitted\": %llu, \"shed\": %llu, "
                     "\"mean_workers\": %.2f, \"p99_ms\": %.3f}%s\n",
                     p.name.c_str(), p.offered_mult,
                     static_cast<unsigned long long>(p.submitted),
                     static_cast<unsigned long long>(p.shed),
                     p.mean_workers, p.p99_ms,
                     i + 1 < leg.phases.size() ? "," : "");
      }
      std::fprintf(f, "    ]}");
    };
    std::fprintf(f, ",\n  \"elastic_compare\": {\n");
    leg_json("fixed", *fixed_leg);
    std::fprintf(f, ",\n");
    leg_json("elastic", *elastic_leg);
    std::fprintf(f, "\n  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "[soak] results written to %s\n",
                 opt.json_path.c_str());
    return;
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[soak] results written to %s\n",
               opt.json_path.c_str());
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "serve_soak: %s\n",
                 args_or.status().ToString().c_str());
    return 2;
  }
  const CliArgs& args = args_or.value();
  SoakOptions opt;
  opt.devices = static_cast<int>(args.get_int("devices", opt.devices));
  opt.workers = static_cast<int>(args.get_int("workers", opt.workers));
  opt.tenants = static_cast<int>(args.get_int("tenants", opt.tenants));
  opt.duration_s = args.get_double("duration", opt.duration_s);
  opt.curve_point_s =
      args.get_double("curve-seconds", std::max(1.0, opt.duration_s / 10.0));
  opt.skip_curve = args.get_bool("skip-curve", false);
  opt.skip_elastic = args.get_bool("skip-elastic", false);
  opt.elastic_phase_s = args.get_double("elastic-seconds", 0.0);
  opt.faults = args.get_string("faults", "");
  opt.fault_window = args.get_double("fault-window", opt.fault_window);
  opt.sched = args.get_string("sched", "static") == "adaptive"
                  ? sched::SchedMode::kAdaptive
                  : sched::SchedMode::kStatic;
  opt.bursty = args.get_bool("bursty", false);
  opt.burst = static_cast<int>(args.get_int("burst", opt.burst));
  opt.dim = static_cast<int>(args.get_int("dim", opt.dim));
  opt.niter = static_cast<int>(args.get_int("niter", opt.niter));
  opt.payload_bytes = args.get_bytes("payload-bytes", opt.payload_bytes);
  opt.deadline_ms = args.get_double("deadline-ms", 0.0);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opt.json_path = args.get_string("json", "BENCH_serve.json");
  if (args.get_bool("quick", false)) {
    opt.duration_s = 3.0;
    opt.curve_point_s = 0.5;
  }

  const auto outs = benchtool::telemetry_outputs(args);
  if (outs.active()) benchtool::begin_telemetry_capture(outs);

  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = opt.payload_bytes;
  spec.seed = opt.seed;
  const auto payload = datagen::generate(spec);

  // Phase 1: calibrate.
  const double job_s = calibrate_job_seconds(opt, payload);
  const double saturation = static_cast<double>(opt.workers) / job_s;
  const std::uint64_t deadline_ns =
      opt.deadline_ms > 0
          ? static_cast<std::uint64_t>(opt.deadline_ms * 1e6)
          : static_cast<std::uint64_t>(20.0 * job_s * 1e9);
  std::fprintf(stderr,
               "[soak] calibrated job=%.3fms saturation=%.1f jobs/s "
               "deadline=%.1fms\n",
               job_s * 1e3, saturation,
               static_cast<double>(deadline_ns) / 1e6);

  // Phase 2: tail-latency-vs-offered-load curve (clean machine).
  std::vector<PhaseResult> curve;
  if (!opt.skip_curve) {
    for (double mult : {0.25, 0.5, 1.0, 1.5, 2.0}) {
      PhaseResult p = run_open_loop(opt, payload, saturation * mult,
                                    opt.curve_point_s, "", 1.0, deadline_ns,
                                    "curve");
      p.offered_mult = mult;
      curve.push_back(std::move(p));
    }
  }

  // Phase 3: chaos soak at 2x saturation with faults + scheduler together.
  PhaseResult soak =
      run_open_loop(opt, payload, saturation * 2.0, opt.duration_s,
                    opt.faults, opt.fault_window, deadline_ns, "soak");
  soak.offered_mult = 2.0;

  // Phase 4: elastic-vs-fixed comparison over the same trough/peak/trough
  // load curve (clean machine, no deadlines).
  std::optional<ElasticLegResult> fixed_leg;
  std::optional<ElasticLegResult> elastic_leg;
  if (!opt.skip_elastic) {
    const double phase_s = opt.elastic_phase_s > 0
                               ? opt.elastic_phase_s
                               : std::max(1.5, opt.duration_s / 5.0);
    // Synthetic jobs have a known duration, so the fixed farm's capacity
    // is exact — no calibration run needed.
    const double syn_saturation = static_cast<double>(opt.workers) /
                                  (static_cast<double>(kElasticJobNs) / 1e9);
    std::fprintf(stderr,
                 "[soak] synthetic job=%.1fms saturation=%.1f jobs/s "
                 "(elastic legs)\n",
                 static_cast<double>(kElasticJobNs) / 1e6, syn_saturation);
    fixed_leg =
        run_elastic_leg(opt, payload, syn_saturation, false, phase_s);
    elastic_leg =
        run_elastic_leg(opt, payload, syn_saturation, true, phase_s);
  }

  write_json(opt, job_s, saturation, curve, soak,
             fixed_leg.has_value() ? &*fixed_leg : nullptr,
             elastic_leg.has_value() ? &*elastic_leg : nullptr);

  int rc = 0;
  if (!soak.failure.empty()) {
    std::fprintf(stderr, "[soak] FAIL: pipeline failure: %s\n",
                 soak.failure.c_str());
    rc = 1;
  }
  if (soak.breakers_open_end > 0) {
    std::fprintf(stderr,
                 "[soak] FAIL: %d breaker(s) stuck open after the chaos "
                 "window\n",
                 soak.breakers_open_end);
    rc = 1;
  }
  if (soak.shed == 0) {
    std::fprintf(stderr,
                 "[soak] FAIL: no shedding at 2x saturation (admission "
                 "control inert)\n");
    rc = 1;
  }
  if (soak.completed != soak.accepted) {
    std::fprintf(stderr,
                 "[soak] FAIL: accepted=%llu but completed=%llu (lost "
                 "work)\n",
                 static_cast<unsigned long long>(soak.accepted),
                 static_cast<unsigned long long>(soak.completed));
    rc = 1;
  }
  // "Bounded p99": accepted jobs must complete within the deadline budget
  // plus one job of slack — queue + execution, not an open-ended backlog.
  const double p99_bound_ms =
      static_cast<double>(deadline_ns) / 1e6 + job_s * 1e3 + 50.0;
  if (soak.p99_ms > p99_bound_ms) {
    std::fprintf(stderr, "[soak] FAIL: p99 %.2fms exceeds bound %.2fms\n",
                 soak.p99_ms, p99_bound_ms);
    rc = 1;
  }
  if (fixed_leg.has_value() && elastic_leg.has_value()) {
    if (!fixed_leg->failure.empty() || !elastic_leg->failure.empty()) {
      std::fprintf(stderr, "[soak] FAIL: elastic leg pipeline failure: %s%s\n",
                   fixed_leg->failure.c_str(), elastic_leg->failure.c_str());
      rc = 1;
    }
    if (fixed_leg->completed != fixed_leg->accepted ||
        elastic_leg->completed != elastic_leg->accepted) {
      std::fprintf(stderr, "[soak] FAIL: elastic leg lost accepted work\n");
      rc = 1;
    }
    if (elastic_leg->scale_ups == 0) {
      std::fprintf(stderr,
                   "[soak] FAIL: farm never scaled up under 2x overload\n");
      rc = 1;
    }
    if (elastic_leg->scale_downs == 0) {
      std::fprintf(stderr,
                   "[soak] FAIL: farm never scaled down after the peak\n");
      rc = 1;
    }
    // At the peak the elastic farm has twice the fixed farm's worker
    // ceiling, so its p99 must be no worse (5% + 5ms measurement slack).
    const double fixed_peak_ms = fixed_leg->phases[1].p99_ms;
    const double elastic_peak_ms = elastic_leg->phases[1].p99_ms;
    if (elastic_peak_ms > fixed_peak_ms * 1.05 + 5.0) {
      std::fprintf(stderr,
                   "[soak] FAIL: elastic peak p99 %.2fms worse than fixed "
                   "%.2fms\n",
                   elastic_peak_ms, fixed_peak_ms);
      rc = 1;
    }
    // After the peak the farm must have given capacity back: mean fed
    // workers across the final trough strictly below the fixed count.
    const double trough_workers = elastic_leg->phases[2].mean_workers;
    if (trough_workers >= static_cast<double>(opt.workers)) {
      std::fprintf(stderr,
                   "[soak] FAIL: trough mean workers %.2f did not drop "
                   "below the fixed %d\n",
                   trough_workers, opt.workers);
      rc = 1;
    }
  }
  if (outs.active()) {
    const int trc = benchtool::end_telemetry_capture(outs);
    if (rc == 0) rc = trc;
  }
  std::printf("serve_soak: %s (saturation=%.1f jobs/s, soak 2x: shed=%llu "
              "miss=%llu trips=%llu p99=%.2fms)\n",
              rc == 0 ? "PASS" : "FAIL", saturation,
              static_cast<unsigned long long>(soak.shed),
              static_cast<unsigned long long>(soak.deadline_miss),
              static_cast<unsigned long long>(soak.breaker_trips),
              soak.p99_ms);
  return rc;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
