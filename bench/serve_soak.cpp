// Chaos-soak harness for the serve layer: open-loop Poisson/bursty load
// against the multi-tenant Service, with fault injection and the adaptive
// scheduler running simultaneously.
//
// Three phases:
//   1. calibrate — closed-loop measurement of the per-job service time on a
//      clean machine; saturation ~= workers / t_job.
//   2. curve     — open-loop runs at 0.25x..2x saturation, recording the
//      tail latency of accepted jobs plus shed / deadline-miss counts
//      (the tail-latency-vs-offered-load curve).
//   3. soak      — --duration seconds at 2x saturation with --faults
//      injected on every device for the first 70% of the run (the chaos
//      window), then cleared so tripped breakers must recover to closed.
//
// Exit is non-zero when the soak violates its envelope: pipeline failure,
// breaker stuck open after the chaos window, no shedding at 2x overload,
// or an unbounded accepted-job p99. Results land in --json (default
// BENCH_serve.json); --trace/--metrics capture the usual telemetry.
//
// Examples:
//   serve_soak --quick
//   serve_soak --duration=30 --faults=launch.p=0.02,alloc.p=0.01 \
//              --sched=adaptive --json=BENCH_serve.json
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault_plan.hpp"
#include "serve/service.hpp"

namespace hs {
namespace {

using Clock = std::chrono::steady_clock;

struct SoakOptions {
  int devices = 2;
  int workers = 4;
  int tenants = 3;
  double duration_s = 10.0;       ///< soak phase
  double curve_point_s = 1.0;     ///< per curve point
  bool skip_curve = false;
  std::string faults;             ///< FaultPlan spec applied to every device
  double fault_window = 0.7;      ///< fraction of the soak with faults live
  sched::SchedMode sched = sched::SchedMode::kStatic;
  bool bursty = false;            ///< Poisson bursts of `burst` arrivals
  int burst = 8;
  int dim = 32;                   ///< mandel job frame
  int niter = 300;
  std::uint64_t payload_bytes = 48 * 1024;  ///< dedup job input
  double deadline_ms = 0;         ///< 0 = auto (20x calibrated job time)
  std::uint64_t seed = 42;
  std::string json_path = "BENCH_serve.json";
};

struct PhaseResult {
  double offered_mult = 0;   ///< offered load as a multiple of saturation
  double offered_rate = 0;   ///< jobs/s
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_miss = 0;
  std::uint64_t cpu_jobs = 0;
  std::uint64_t breaker_trips = 0;
  int breakers_open_end = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  std::string failure;
};

serve::JobRequest make_job(const SoakOptions& opt,
                           const std::vector<std::uint8_t>& payload,
                           std::uint64_t n) {
  serve::JobRequest req;
  if (n % 2 == 0) {
    req.kind = serve::JobKind::kMandel;
    req.mandel.dim = opt.dim;
    req.mandel.niter = opt.niter;
  } else {
    req.kind = serve::JobKind::kDedup;
    req.payload = payload;
    req.dedup.batch_size = 16 * 1024;
  }
  return req;
}

serve::ServiceConfig service_config(const SoakOptions& opt,
                                    telemetry::Registry* reg,
                                    std::uint64_t deadline_ns) {
  serve::ServiceConfig cfg;
  cfg.workers = opt.workers;
  cfg.sched = opt.sched;
  cfg.registry = reg;
  cfg.default_deadline_ns = deadline_ns;
  // Keep total standing work (tenant watermarks + flow queue) below what
  // the deadline budget can absorb, so queue-depth admission control — not
  // just deadline expiry — is what bounds the backlog under overload.
  cfg.tenant_queue_capacity = 16;
  cfg.queue_capacity = static_cast<std::size_t>(opt.workers) * 4;
  // Latency watermark: shed while the windowed p99 exceeds the deadline
  // budget (the point where accepted work is mostly wasted anyway).
  cfg.p99_shed_budget_ns = deadline_ns;
  cfg.retry.base_delay = std::chrono::microseconds(20);
  cfg.retry.max_delay = std::chrono::microseconds(2000);
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.cooldown = std::chrono::milliseconds(5);
  return cfg;
}

/// Closed-loop: measures the mean per-job wall time on a clean machine.
double calibrate_job_seconds(const SoakOptions& opt,
                             const std::vector<std::uint8_t>& payload) {
  auto machine = gpusim::Machine::Create(opt.devices,
                                         gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  serve::Service service(machine.get(), service_config(opt, &reg, 0));
  if (!service.start().ok()) {
    std::fprintf(stderr, "[soak] calibrate: service failed to start\n");
    std::exit(1);
  }
  constexpr int kJobs = 16;
  const auto t0 = Clock::now();
  for (int i = 0; i < kJobs; ++i) {
    auto r = service.submit("calibrate",
                            make_job(opt, payload,
                                     static_cast<std::uint64_t>(i)));
    if (!r.accepted()) {
      std::fprintf(stderr, "[soak] calibrate: submission rejected\n");
      std::exit(1);
    }
    (void)r.result.get();
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  (void)service.stop();
  cudax::unbind_machine();
  return dt.count() / kJobs;
}

/// Open-loop phase driver: Poisson (or bursty) arrivals at `rate` jobs/s
/// for `seconds`, against a fresh machine. `fault_spec` (if any) is armed
/// on every device and cleared after `fault_window` of the phase.
PhaseResult run_open_loop(const SoakOptions& opt,
                          const std::vector<std::uint8_t>& payload,
                          double rate, double seconds,
                          const std::string& fault_spec, double fault_window,
                          std::uint64_t deadline_ns, const char* label) {
  PhaseResult out;
  out.offered_rate = rate;
  auto machine = gpusim::Machine::Create(opt.devices,
                                         gpusim::DeviceSpec::TitanXP());
  if (!fault_spec.empty()) {
    for (int d = 0; d < machine->device_count(); ++d) {
      // Decorrelate the per-device fault streams unless the spec pins one.
      std::string spec = fault_spec;
      if (spec.find("seed=") == std::string::npos) {
        spec = "seed=" + std::to_string(opt.seed + 100 + static_cast<std::uint64_t>(d)) +
               "," + spec;
      }
      auto plan = gpusim::FaultPlan::Parse(spec);
      if (!plan.ok()) {
        std::fprintf(stderr, "[soak] bad --faults spec: %s\n",
                     plan.status().ToString().c_str());
        std::exit(1);
      }
      machine->device(d).set_fault_plan(std::move(plan).value());
    }
  }
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  serve::Service service(machine.get(),
                         service_config(opt, &reg, deadline_ns));
  if (!service.start().ok()) {
    std::fprintf(stderr, "[soak] %s: service failed to start\n", label);
    std::exit(1);
  }

  Xoshiro256 rng(opt.seed ^ 0x5048415345ull);
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(seconds));
  const auto chaos_end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds * fault_window));
  bool chaos_cleared = fault_spec.empty();
  double next_arrival = 0;  // seconds since start
  std::uint64_t n = 0;
  while (Clock::now() < deadline) {
    if (!chaos_cleared && Clock::now() >= chaos_end) {
      // Close the chaos window: the remaining run must let every tripped
      // breaker probe its device back to closed.
      for (int d = 0; d < machine->device_count(); ++d) {
        machine->device(d).clear_fault_plan();
      }
      chaos_cleared = true;
    }
    const int arrivals = opt.bursty ? opt.burst : 1;
    for (int k = 0; k < arrivals; ++k) {
      const std::string tenant =
          "tenant-" + std::to_string(n % static_cast<std::uint64_t>(opt.tenants));
      auto r = service.submit(tenant, make_job(opt, payload, n),
                              /*want_result=*/false);
      (void)r;
      ++n;
    }
    // Poisson inter-arrival for the next batch (bursty mode stretches the
    // gap by the burst size so the mean offered rate stays `rate`).
    const double u = std::max(rng.uniform(), 1e-12);
    next_arrival += -std::log(u) / rate * arrivals;
    const auto wake = start + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(next_arrival));
    std::this_thread::sleep_until(std::min(wake, deadline));
  }
  Status run = service.stop();
  cudax::unbind_machine();

  const auto stats = service.stats();
  out.submitted = stats.submitted;
  out.accepted = stats.accepted;
  out.shed = stats.shed;
  out.completed = stats.completed;
  out.deadline_miss = stats.deadline_miss;
  out.cpu_jobs = stats.cpu_jobs;
  out.breaker_trips = stats.breaker_trips;
  out.breakers_open_end = stats.breakers_open;
  const auto lat = service.latency();
  out.p50_ms = lat.p50() / 1e6;
  out.p95_ms = lat.p95() / 1e6;
  out.p99_ms = lat.p99() / 1e6;
  if (!run.ok()) out.failure = run.ToString();
  const std::string stage_failures = service.failure_summary();
  if (!stage_failures.empty()) {
    out.failure += out.failure.empty() ? stage_failures : "; " + stage_failures;
  }
  std::fprintf(stderr,
               "[soak] %-10s rate=%7.1f/s submitted=%llu accepted=%llu "
               "shed=%llu miss=%llu cpu=%llu trips=%llu open@end=%d "
               "p99=%.2fms\n",
               label, rate, static_cast<unsigned long long>(out.submitted),
               static_cast<unsigned long long>(out.accepted),
               static_cast<unsigned long long>(out.shed),
               static_cast<unsigned long long>(out.deadline_miss),
               static_cast<unsigned long long>(out.cpu_jobs),
               static_cast<unsigned long long>(out.breaker_trips),
               out.breakers_open_end, out.p99_ms);
  return out;
}

void write_json(const SoakOptions& opt, double job_s, double saturation,
                const std::vector<PhaseResult>& curve,
                const PhaseResult& soak) {
  FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[soak] cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  auto phase_json = [&](const PhaseResult& p) {
    std::fprintf(f,
                 "    {\"offered_mult\": %.3f, \"offered_rate\": %.2f, "
                 "\"submitted\": %llu, \"accepted\": %llu, \"shed\": %llu, "
                 "\"completed\": %llu, \"deadline_miss\": %llu, "
                 "\"cpu_jobs\": %llu, \"breaker_trips\": %llu, "
                 "\"breakers_open_end\": %d, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"failure\": \"%s\"}",
                 p.offered_mult, p.offered_rate,
                 static_cast<unsigned long long>(p.submitted),
                 static_cast<unsigned long long>(p.accepted),
                 static_cast<unsigned long long>(p.shed),
                 static_cast<unsigned long long>(p.completed),
                 static_cast<unsigned long long>(p.deadline_miss),
                 static_cast<unsigned long long>(p.cpu_jobs),
                 static_cast<unsigned long long>(p.breaker_trips),
                 p.breakers_open_end, p.p50_ms, p.p95_ms, p.p99_ms,
                 p.failure.c_str());
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_soak\",\n");
  std::fprintf(f, "  \"devices\": %d,\n  \"workers\": %d,\n", opt.devices,
               opt.workers);
  std::fprintf(f, "  \"sched\": \"%s\",\n",
               opt.sched == sched::SchedMode::kAdaptive ? "adaptive"
                                                        : "static");
  std::fprintf(f, "  \"faults\": \"%s\",\n", opt.faults.c_str());
  std::fprintf(f, "  \"bursty\": %s,\n", opt.bursty ? "true" : "false");
  std::fprintf(f, "  \"job_seconds\": %.6f,\n", job_s);
  std::fprintf(f, "  \"saturation_jobs_per_sec\": %.2f,\n", saturation);
  std::fprintf(f, "  \"curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    phase_json(curve[i]);
    std::fprintf(f, "%s\n", i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"soak\": \n");
  phase_json(soak);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[soak] results written to %s\n",
               opt.json_path.c_str());
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "serve_soak: %s\n",
                 args_or.status().ToString().c_str());
    return 2;
  }
  const CliArgs& args = args_or.value();
  SoakOptions opt;
  opt.devices = static_cast<int>(args.get_int("devices", opt.devices));
  opt.workers = static_cast<int>(args.get_int("workers", opt.workers));
  opt.tenants = static_cast<int>(args.get_int("tenants", opt.tenants));
  opt.duration_s = args.get_double("duration", opt.duration_s);
  opt.curve_point_s =
      args.get_double("curve-seconds", std::max(1.0, opt.duration_s / 10.0));
  opt.skip_curve = args.get_bool("skip-curve", false);
  opt.faults = args.get_string("faults", "");
  opt.fault_window = args.get_double("fault-window", opt.fault_window);
  opt.sched = args.get_string("sched", "static") == "adaptive"
                  ? sched::SchedMode::kAdaptive
                  : sched::SchedMode::kStatic;
  opt.bursty = args.get_bool("bursty", false);
  opt.burst = static_cast<int>(args.get_int("burst", opt.burst));
  opt.dim = static_cast<int>(args.get_int("dim", opt.dim));
  opt.niter = static_cast<int>(args.get_int("niter", opt.niter));
  opt.payload_bytes = args.get_bytes("payload-bytes", opt.payload_bytes);
  opt.deadline_ms = args.get_double("deadline-ms", 0.0);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opt.json_path = args.get_string("json", "BENCH_serve.json");
  if (args.get_bool("quick", false)) {
    opt.duration_s = 3.0;
    opt.curve_point_s = 0.5;
  }

  const auto outs = benchtool::telemetry_outputs(args);
  if (outs.active()) benchtool::begin_telemetry_capture(outs);

  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = opt.payload_bytes;
  spec.seed = opt.seed;
  const auto payload = datagen::generate(spec);

  // Phase 1: calibrate.
  const double job_s = calibrate_job_seconds(opt, payload);
  const double saturation = static_cast<double>(opt.workers) / job_s;
  const std::uint64_t deadline_ns =
      opt.deadline_ms > 0
          ? static_cast<std::uint64_t>(opt.deadline_ms * 1e6)
          : static_cast<std::uint64_t>(20.0 * job_s * 1e9);
  std::fprintf(stderr,
               "[soak] calibrated job=%.3fms saturation=%.1f jobs/s "
               "deadline=%.1fms\n",
               job_s * 1e3, saturation,
               static_cast<double>(deadline_ns) / 1e6);

  // Phase 2: tail-latency-vs-offered-load curve (clean machine).
  std::vector<PhaseResult> curve;
  if (!opt.skip_curve) {
    for (double mult : {0.25, 0.5, 1.0, 1.5, 2.0}) {
      PhaseResult p = run_open_loop(opt, payload, saturation * mult,
                                    opt.curve_point_s, "", 1.0, deadline_ns,
                                    "curve");
      p.offered_mult = mult;
      curve.push_back(std::move(p));
    }
  }

  // Phase 3: chaos soak at 2x saturation with faults + scheduler together.
  PhaseResult soak =
      run_open_loop(opt, payload, saturation * 2.0, opt.duration_s,
                    opt.faults, opt.fault_window, deadline_ns, "soak");
  soak.offered_mult = 2.0;

  write_json(opt, job_s, saturation, curve, soak);

  int rc = 0;
  if (!soak.failure.empty()) {
    std::fprintf(stderr, "[soak] FAIL: pipeline failure: %s\n",
                 soak.failure.c_str());
    rc = 1;
  }
  if (soak.breakers_open_end > 0) {
    std::fprintf(stderr,
                 "[soak] FAIL: %d breaker(s) stuck open after the chaos "
                 "window\n",
                 soak.breakers_open_end);
    rc = 1;
  }
  if (soak.shed == 0) {
    std::fprintf(stderr,
                 "[soak] FAIL: no shedding at 2x saturation (admission "
                 "control inert)\n");
    rc = 1;
  }
  if (soak.completed != soak.accepted) {
    std::fprintf(stderr,
                 "[soak] FAIL: accepted=%llu but completed=%llu (lost "
                 "work)\n",
                 static_cast<unsigned long long>(soak.accepted),
                 static_cast<unsigned long long>(soak.completed));
    rc = 1;
  }
  // "Bounded p99": accepted jobs must complete within the deadline budget
  // plus one job of slack — queue + execution, not an open-ended backlog.
  const double p99_bound_ms =
      static_cast<double>(deadline_ns) / 1e6 + job_s * 1e3 + 50.0;
  if (soak.p99_ms > p99_bound_ms) {
    std::fprintf(stderr, "[soak] FAIL: p99 %.2fms exceeds bound %.2fms\n",
                 soak.p99_ms, p99_bound_ms);
    rc = 1;
  }
  if (outs.active()) {
    const int trc = benchtool::end_telemetry_capture(outs);
    if (rc == 0) rc = trc;
  }
  std::printf("serve_soak: %s (saturation=%.1f jobs/s, soak 2x: shed=%llu "
              "miss=%llu trips=%llu p99=%.2fms)\n",
              rc == 0 ? "PASS" : "FAIL", saturation,
              static_cast<unsigned long long>(soak.shed),
              static_cast<unsigned long long>(soak.deadline_miss),
              static_cast<unsigned long long>(soak.breaker_trips),
              soak.p99_ms);
  return rc;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
