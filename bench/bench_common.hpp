// Shared helpers for the figure benches: workload scaling flags, the
// iteration-map cache, and paper-reference reporting.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "mandel/iteration_map.hpp"

namespace hs::benchtool {

/// Resolves the Mandelbrot workload from flags:
///   --paper-scale        dim=2000 niter=200000 (the paper's workload;
///                        first run computes ~1.3e11 iterations and caches
///                        the map on disk, later runs load it instantly)
///   --dim=N --niter=N    explicit values
///   --quick              dim=400 niter=5000
/// Default: dim=800 niter=30000 (about 10 s of one-time map compute).
inline kernels::MandelParams mandel_workload(const CliArgs& args) {
  kernels::MandelParams p;
  if (args.get_bool("paper-scale", false)) {
    p.dim = 2000;
    p.niter = 200000;
  } else if (args.get_bool("quick", false)) {
    p.dim = 400;
    p.niter = 5000;
  } else {
    p.dim = 800;
    p.niter = 30000;
  }
  p.dim = static_cast<int>(args.get_int("dim", p.dim));
  p.niter = static_cast<int>(args.get_int("niter", p.niter));
  return p;
}

/// Loads or computes (and caches) the iteration map under --map-cache
/// (default: ./.cache).
inline mandel::IterationMap load_map(const CliArgs& args,
                                     const kernels::MandelParams& params) {
  std::string dir = args.get_string("map-cache", ".cache");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = dir + "/mandel_map_" + std::to_string(params.dim) +
                     "_" + std::to_string(params.niter) + ".bin";
  std::fprintf(stderr,
               "[bench] mandel workload dim=%d niter=%d (map cache: %s)\n",
               params.dim, params.niter, path.c_str());
  auto map = mandel::IterationMap::load_or_compute(path, params);
  if (!map.ok()) {
    std::fprintf(stderr, "[bench] map error: %s\n",
                 map.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(map).value();
}

/// "12.3x" speedup cell.
inline std::string speedup_cell(double baseline_seconds, double seconds) {
  if (seconds <= 0) return "-";
  return format_fixed(baseline_seconds / seconds, 1) + "x";
}

}  // namespace hs::benchtool
