// Shared helpers for the figure benches: workload scaling flags, the
// iteration-map cache, and paper-reference reporting.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "cudax/pinned_pool.hpp"
#include "mandel/iteration_map.hpp"
#include "telemetry/queue_sampler.hpp"
#include "telemetry/span_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::benchtool {

/// Resolves the Mandelbrot workload from flags:
///   --paper-scale        dim=2000 niter=200000 (the paper's workload;
///                        first run computes ~1.3e11 iterations and caches
///                        the map on disk, later runs load it instantly)
///   --dim=N --niter=N    explicit values
///   --quick              dim=400 niter=5000
/// Default: dim=800 niter=30000 (about 10 s of one-time map compute).
inline kernels::MandelParams mandel_workload(const CliArgs& args) {
  kernels::MandelParams p;
  if (args.get_bool("paper-scale", false)) {
    p.dim = 2000;
    p.niter = 200000;
  } else if (args.get_bool("quick", false)) {
    p.dim = 400;
    p.niter = 5000;
  } else {
    p.dim = 800;
    p.niter = 30000;
  }
  p.dim = static_cast<int>(args.get_int("dim", p.dim));
  p.niter = static_cast<int>(args.get_int("niter", p.niter));
  return p;
}

/// Loads or computes (and caches) the iteration map under --map-cache
/// (default: ./.cache).
inline mandel::IterationMap load_map(const CliArgs& args,
                                     const kernels::MandelParams& params) {
  std::string dir = args.get_string("map-cache", ".cache");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = dir + "/mandel_map_" + std::to_string(params.dim) +
                     "_" + std::to_string(params.niter) + ".bin";
  std::fprintf(stderr,
               "[bench] mandel workload dim=%d niter=%d (map cache: %s)\n",
               params.dim, params.niter, path.c_str());
  auto map = mandel::IterationMap::load_or_compute(path, params);
  if (!map.ok()) {
    std::fprintf(stderr, "[bench] map error: %s\n",
                 map.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(map).value();
}

/// "12.3x" speedup cell.
inline std::string speedup_cell(double baseline_seconds, double seconds) {
  if (seconds <= 0) return "-";
  return format_fixed(baseline_seconds / seconds, 1) + "x";
}

/// --trace=FILE / --metrics=FILE output destinations for the telemetry
/// demo runs (a *real* functional pipeline executed under the process-wide
/// telemetry singletons, as opposed to the modeled tables).
struct TelemetryOutputs {
  std::string trace_path;    ///< Chrome trace-event JSON (ui.perfetto.dev)
  std::string metrics_path;  ///< .json -> JSON, else Prometheus exposition
  [[nodiscard]] bool active() const {
    return !trace_path.empty() || !metrics_path.empty();
  }
};

inline TelemetryOutputs telemetry_outputs(const CliArgs& args) {
  return {args.get_string("trace", ""), args.get_string("metrics", "")};
}

/// Turns the process-wide telemetry on for a capture run: metrics registry,
/// pool gauges, queue-depth sampler, and (when a trace is requested) the
/// span recorder. Pair with end_telemetry_capture.
inline void begin_telemetry_capture(const TelemetryOutputs& outs) {
  telemetry::set_enabled(true);
  telemetry::register_buffer_pool_gauges(telemetry::Registry::Default());
  cudax::register_pinned_pool_gauges(telemetry::Registry::Default());
  if (!outs.trace_path.empty()) {
    telemetry::SpanRecorder::Default().set_recording(true);
  }
  (void)telemetry::QueueDepthSampler::Default().start(
      std::chrono::microseconds(200));
}

/// Stops capture and writes the requested files. Returns 0 on success.
inline int end_telemetry_capture(const TelemetryOutputs& outs) {
  telemetry::QueueDepthSampler::Default().stop();
  telemetry::SpanRecorder::Default().set_recording(false);
  telemetry::set_enabled(false);
  int rc = 0;
  if (!outs.trace_path.empty()) {
    Status s = telemetry::SpanRecorder::Default().write_chrome_trace(
        outs.trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "[bench] trace write failed: %s\n",
                   s.ToString().c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "[bench] chrome trace written to %s\n",
                   outs.trace_path.c_str());
    }
  }
  if (!outs.metrics_path.empty()) {
    Status s = telemetry::Registry::Default().write_metrics(outs.metrics_path);
    if (!s.ok()) {
      std::fprintf(stderr, "[bench] metrics write failed: %s\n",
                   s.ToString().c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "[bench] metrics written to %s\n",
                   outs.metrics_path.c_str());
    }
  }
  return rc;
}

}  // namespace hs::benchtool
