// Substrate microbenchmarks (google-benchmark, real wall time): the
// lock-free SPSC queue, flow farm throughput, taskx token pipeline, and the
// computational kernels (SHA-1, SHA-256, rabin, LZSS).
//
// Unlike the figure benches (which report modeled time on the calibrated
// machine), these measure this host directly and exist to validate that
// the substrates are real, working implementations.
#include <benchmark/benchmark.h>

#include <numeric>
#include <optional>
#include <thread>

#include "common/rng.hpp"
#include "datagen/corpus.hpp"
#include "flow/adapters.hpp"
#include "flow/pipeline.hpp"
#include "flow/spsc_queue.hpp"
#include "kernels/huffman.hpp"
#include "kernels/lzss.hpp"
#include "kernels/mandel.hpp"
#include "kernels/rabin.hpp"
#include "kernels/sha1.hpp"
#include "kernels/sha256.hpp"
#include "taskx/pipeline.hpp"
#include "taskx/pool.hpp"

namespace hs {
namespace {

// ---- SPSC queue ----------------------------------------------------------------

void BM_SpscQueuePingPong(benchmark::State& state) {
  flow::SpscQueue<int> q(static_cast<std::size_t>(state.range(0)));
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    int v;
    while (!stop.load(std::memory_order_acquire)) {
      while (q.try_pop(v)) {
      }
    }
    while (q.try_pop(v)) {
    }
  });
  std::int64_t pushed = 0;
  for (auto _ : state) {
    if (q.try_push(static_cast<int>(pushed))) ++pushed;
  }
  stop.store(true, std::memory_order_release);
  consumer.join();
  state.SetItemsProcessed(pushed);
}
BENCHMARK(BM_SpscQueuePingPong)->Arg(64)->Arg(1024);

void BM_SpscQueueUncontended(benchmark::State& state) {
  flow::SpscQueue<int> q(1024);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push(1));
    benchmark::DoNotOptimize(q.try_pop(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscQueueUncontended);

// ---- flow farm ------------------------------------------------------------------

void BM_FlowFarmThroughput(benchmark::State& state) {
  const int items = 20000;
  for (auto _ : state) {
    flow::Pipeline p;
    p.add_stage(flow::make_source<int>(
                    [i = 0, items]() mutable -> std::optional<int> {
                      return i < items ? std::optional<int>(i++)
                                       : std::nullopt;
                    }),
                "src");
    p.add_farm(flow::stage_factory<int, int>([](int v) { return v + 1; }),
               flow::FarmOptions{
                   .replicas = static_cast<int>(state.range(0)),
                   .ordered = true},
               "farm");
    long long sum = 0;
    p.add_stage(flow::make_sink<int>([&](int v) { sum += v; }), "sink");
    if (!p.run_and_wait().ok()) state.SkipWithError("pipeline failed");
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_FlowFarmThroughput)->Arg(1)->Arg(2)->Arg(4);

// ---- taskx pipeline -----------------------------------------------------------------

void BM_TaskxPipelineThroughput(benchmark::State& state) {
  const int items = 20000;
  taskx::ThreadPool pool(4);
  for (auto _ : state) {
    taskx::Pipeline p([i = 0, items]() mutable -> std::optional<taskx::Item> {
      if (i >= items) return std::nullopt;
      return taskx::Item::of<int>(i++);
    });
    p.add_filter(taskx::FilterMode::kParallel, [](taskx::Item in) {
      return taskx::Item::of<int>(in.as<int>() + 1);
    });
    long long sum = 0;
    p.add_filter(taskx::FilterMode::kSerialInOrder, [&](taskx::Item in) {
      sum += in.as<int>();
      return in;
    });
    if (!p.run(pool, static_cast<std::size_t>(state.range(0))).ok()) {
      state.SkipWithError("pipeline failed");
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_TaskxPipelineThroughput)->Arg(4)->Arg(38);

// ---- kernels -----------------------------------------------------------------------

std::vector<std::uint8_t> bench_data(std::size_t n) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kSilesiaLike;
  spec.bytes = n;
  return datagen::generate(spec);
}

void BM_Sha1(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 20);

void BM_RabinChunking(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  kernels::Rabin rabin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rabin.chunk_boundaries(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RabinChunking)->Arg(1 << 20);

void BM_LzssEncode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  kernels::LzssParams params;
  params.window_size = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::lzss_encode(data, params));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzssEncode)->Args({64 << 10, 64})->Args({64 << 10, 256});

void BM_LzssDecode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  kernels::LzssParams params;
  params.window_size = 256;
  auto compressed = kernels::lzss_encode(data, params);
  for (auto _ : state) {
    auto out = kernels::lzss_decode(compressed, data.size(), params);
    if (!out.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzssDecode)->Arg(256 << 10);

void BM_HuffmanEncode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::huffman_encode(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(256 << 10);

void BM_HuffmanDecode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  auto compressed = kernels::huffman_encode(data);
  for (auto _ : state) {
    auto out = kernels::huffman_decode(compressed, data.size());
    if (!out.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecode)->Arg(256 << 10);

void BM_MandelLine(benchmark::State& state) {
  kernels::MandelParams p;
  p.dim = 512;
  p.niter = static_cast<int>(state.range(0));
  std::vector<std::uint8_t> row(static_cast<std::size_t>(p.dim));
  int i = p.dim / 2;  // a line crossing the set
  std::uint64_t iters = 0;
  for (auto _ : state) {
    iters += kernels::mandel_line(p, i, row);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}
BENCHMARK(BM_MandelLine)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace hs

BENCHMARK_MAIN();
