// Substrate microbenchmarks (real wall time): the lock-free SPSC queue,
// flow farm throughput, taskx token pipeline, the computational kernels
// (SHA-1, SHA-256, rabin, LZSS), and the dedup end-to-end datapath.
//
// Unlike the figure benches (which report modeled time on the calibrated
// machine), these measure this host directly and exist to validate that
// the substrates are real, working implementations.
//
// Default mode runs the dedup end-to-end suite and writes machine-readable
// results (MB/s, ops/s, allocation counts) to BENCH_micro.json so the perf
// trajectory is tracked across PRs. Flags:
//   --json=PATH            output path (default BENCH_micro.json)
//   --lzss=MODE            match finder for the measured rows: chain
//                          (default; hash-chain, window 4096 depth 2) or
//                          legacy (seed brute force, window 256)
//   --quick                single rep per measurement (CI smoke)
//   --reps=N               explicit rep count (default 3, best-of)
//   --check-steady-allocs  exit nonzero if the steady-state dedup pipeline
//                          performs any per-item heap allocation
//   --check-telemetry-overhead[=PCT]
//                          exit nonzero if enabling runtime metrics slows
//                          the dedup e2e pipeline by more than PCT percent
//                          (default budget 2%)
//   --gbench [args...]     run the google-benchmark micro suite instead
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <optional>
#include <span>
#include <string_view>
#include <thread>

#include "common/alloc_hook.hpp"
#include "common/buffer_pool.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/pipelines.hpp"
#include "dedup/stages.hpp"
#include "flow/adapters.hpp"
#include "flow/pipeline.hpp"
#include "flow/spsc_queue.hpp"
#include "kernels/huffman.hpp"
#include "kernels/lzss.hpp"
#include "kernels/mandel.hpp"
#include "kernels/rabin.hpp"
#include "kernels/sha1.hpp"
#include "kernels/sha256.hpp"
#include "kernels/simd/dispatch.hpp"
#include "kernels/simd/rabin_lanes.hpp"
#include "kernels/simd/sha1_mb.hpp"
#include "kernels/simd/sha1_ni.hpp"
#include "taskx/pipeline.hpp"
#include "taskx/pool.hpp"
#include "telemetry/queue_sampler.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HS_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HS_BENCH_SANITIZED 1
#endif
#endif
#ifndef HS_BENCH_SANITIZED
#define HS_BENCH_SANITIZED 0
#endif

namespace hs {
namespace {

// ---- SPSC queue ----------------------------------------------------------------

void BM_SpscQueuePingPong(benchmark::State& state) {
  flow::SpscQueue<int> q(static_cast<std::size_t>(state.range(0)));
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    int v;
    while (!stop.load(std::memory_order_acquire)) {
      while (q.try_pop(v)) {
      }
    }
    while (q.try_pop(v)) {
    }
  });
  std::int64_t pushed = 0;
  for (auto _ : state) {
    if (q.try_push(static_cast<int>(pushed))) ++pushed;
  }
  stop.store(true, std::memory_order_release);
  consumer.join();
  state.SetItemsProcessed(pushed);
}
BENCHMARK(BM_SpscQueuePingPong)->Arg(64)->Arg(1024);

void BM_SpscQueueUncontended(benchmark::State& state) {
  flow::SpscQueue<int> q(1024);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push(1));
    benchmark::DoNotOptimize(q.try_pop(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscQueueUncontended);

// ---- flow farm ------------------------------------------------------------------

void BM_FlowFarmThroughput(benchmark::State& state) {
  const int items = 20000;
  for (auto _ : state) {
    flow::Pipeline p;
    p.add_stage(flow::make_source<int>(
                    [i = 0, items]() mutable -> std::optional<int> {
                      return i < items ? std::optional<int>(i++)
                                       : std::nullopt;
                    }),
                "src");
    p.add_farm(flow::stage_factory<int, int>([](int v) { return v + 1; }),
               flow::FarmOptions{
                   .replicas = static_cast<int>(state.range(0)),
                   .ordered = true},
               "farm");
    long long sum = 0;
    p.add_stage(flow::make_sink<int>([&](int v) { sum += v; }), "sink");
    if (!p.run_and_wait().ok()) state.SkipWithError("pipeline failed");
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_FlowFarmThroughput)->Arg(1)->Arg(2)->Arg(4);

// ---- taskx pipeline -----------------------------------------------------------------

void BM_TaskxPipelineThroughput(benchmark::State& state) {
  const int items = 20000;
  taskx::ThreadPool pool(4);
  for (auto _ : state) {
    taskx::Pipeline p([i = 0, items]() mutable -> std::optional<taskx::Item> {
      if (i >= items) return std::nullopt;
      return taskx::Item::of<int>(i++);
    });
    p.add_filter(taskx::FilterMode::kParallel, [](taskx::Item in) {
      return taskx::Item::of<int>(in.as<int>() + 1);
    });
    long long sum = 0;
    p.add_filter(taskx::FilterMode::kSerialInOrder, [&](taskx::Item in) {
      sum += in.as<int>();
      return in;
    });
    if (!p.run(pool, static_cast<std::size_t>(state.range(0))).ok()) {
      state.SkipWithError("pipeline failed");
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_TaskxPipelineThroughput)->Arg(4)->Arg(38);

// ---- kernels -----------------------------------------------------------------------

std::vector<std::uint8_t> bench_data(std::size_t n) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kSilesiaLike;
  spec.bytes = n;
  return datagen::generate(spec);
}

void BM_Sha1(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 20);

void BM_RabinChunking(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  kernels::Rabin rabin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rabin.chunk_boundaries(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RabinChunking)->Arg(1 << 20);

void BM_LzssEncode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  kernels::LzssParams params;
  params.window_size = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::lzss_encode(data, params));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzssEncode)->Args({64 << 10, 64})->Args({64 << 10, 256});

void BM_LzssDecode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  kernels::LzssParams params;
  params.window_size = 256;
  auto compressed = kernels::lzss_encode(data, params);
  for (auto _ : state) {
    auto out = kernels::lzss_decode(compressed, data.size(), params);
    if (!out.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzssDecode)->Arg(256 << 10);

void BM_HuffmanEncode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::huffman_encode(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(256 << 10);

void BM_HuffmanDecode(benchmark::State& state) {
  auto data = bench_data(static_cast<std::size_t>(state.range(0)));
  auto compressed = kernels::huffman_encode(data);
  for (auto _ : state) {
    auto out = kernels::huffman_decode(compressed, data.size());
    if (!out.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecode)->Arg(256 << 10);

void BM_MandelLine(benchmark::State& state) {
  kernels::MandelParams p;
  p.dim = 512;
  p.niter = static_cast<int>(state.range(0));
  std::vector<std::uint8_t> row(static_cast<std::size_t>(p.dim));
  int i = p.dim / 2;  // a line crossing the set
  std::uint64_t iters = 0;
  for (auto _ : state) {
    iters += kernels::mandel_line(p, i, row);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}
BENCHMARK(BM_MandelLine)->Arg(1000)->Arg(10000);

// ---- dedup end-to-end + JSON emission ----------------------------------------------

struct E2eRow {
  std::string name;
  double mb_per_s = 0;
  double baseline_mb_per_s = 0;  ///< pre-pooling measurement; 0 = none
  std::uint64_t input_bytes = 0;
  std::uint64_t archive_bytes = 0;
  std::string archive_sha1;
  std::uint64_t run_heap_allocs = 0;  ///< heap allocations in the best rep
};

/// Match-finder mode for the measured rows (--lzss=legacy|chain). Chain is
/// the default: these rows track what the implementation actually ships.
/// The modeled figure benches and the golden suites stay on legacy.
kernels::LzssMode g_lzss_mode = kernels::LzssMode::kChain;

/// Probe configuration shared with the recorded pre-PR baselines and the
/// golden bit-exactness tests: 8 MB inputs, 256 KiB batches, ~2 kB blocks.
/// In chain mode the matcher runs its tuned configuration (window 4096 =
/// the format max, depth 2): the chain walk is depth-bounded rather than
/// window-bounded, so the bigger window is simultaneously faster (fewer
/// finds per byte) and better-compressing than legacy's 256.
dedup::DedupConfig e2e_config() {
  dedup::DedupConfig cfg;
  cfg.batch_size = 256 * 1024;
  cfg.rabin.mask = 0x7FF;
  if (g_lzss_mode == kernels::LzssMode::kChain) {
    cfg.lzss.mode = kernels::LzssMode::kChain;
    cfg.lzss.window_size = 4096;
    cfg.lzss.chain_depth = 2;
  }
  return cfg;
}

constexpr std::uint64_t kE2eInputBytes = 8 * 1000 * 1000;

/// Sequential/SPar-CPU numbers measured on this container immediately
/// before the pooled datapath landed (same config and inputs, best of 3) —
/// the denominators of the cross-PR perf trajectory.
double baseline_mb_s(std::string_view name) {
  if (name == "dedup_e2e_sequential_parsec") return 13.04;
  if (name == "dedup_e2e_sequential_source") return 13.58;
  if (name == "dedup_e2e_sequential_silesia") return 11.48;
  if (name == "dedup_e2e_spar_cpu4_parsec") return 13.88;
  return 0;
}

std::string sha1_hex(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  auto digest = kernels::Sha1::hash(data);
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : digest) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

E2eRow run_e2e(const std::string& name, datagen::CorpusKind kind, bool spar,
               int reps) {
  datagen::CorpusSpec spec;
  spec.kind = kind;
  spec.bytes = kE2eInputBytes;
  const std::vector<std::uint8_t> input = datagen::generate(spec);
  const dedup::DedupConfig cfg = e2e_config();

  E2eRow row;
  row.name = name;
  row.baseline_mb_per_s = baseline_mb_s(name);
  row.input_bytes = input.size();
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t allocs_before = heap_alloc_count();
    const auto t0 = std::chrono::steady_clock::now();
    auto archive = spar ? dedup::archive_spar_cpu(input, cfg, 4)
                        : dedup::archive_sequential(input, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs = heap_alloc_count() - allocs_before;
    if (!archive.ok()) {
      std::fprintf(stderr, "[bench] %s failed: %s\n", name.c_str(),
                   archive.status().ToString().c_str());
      std::exit(1);
    }
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double mb_s = static_cast<double>(input.size()) / 1e6 / seconds;
    if (mb_s > row.mb_per_s) {
      row.mb_per_s = mb_s;
      row.run_heap_allocs = allocs;
    }
    if (r == 0) {
      row.archive_bytes = archive.value().size();
      row.archive_sha1 = sha1_hex(archive.value());
    }
  }
  return row;
}

struct SteadyResult {
  std::uint64_t batches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t heap_allocs = 0;  ///< pass-2 delta; 0 in the steady state
};

/// Drives the sequential stage graph twice over the same input with
/// persistent pool/cache/writer state. Pass 1 warms the buffer/batch pools
/// and saturates the duplicate index; pass 2 is the steady state — with
/// warm slabs and a saturated index the per-item datapath must not touch
/// the heap at all.
SteadyResult steady_state_allocs() {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 2 * 1000 * 1000;
  const std::vector<std::uint8_t> input = datagen::generate(spec);
  const dedup::DedupConfig cfg = e2e_config();

  kernels::Rabin rabin(cfg.rabin);
  dedup::BatchPool pool;
  dedup::DupCache cache;
  dedup::ArchiveWriter writer(cfg);
  writer.reserve(2 * (input.size() + input.size() / 4) + 4096);

  SteadyResult res;
  std::uint64_t index = 0;
  auto one_pass = [&] {
    for (std::size_t off = 0; off < input.size(); off += cfg.batch_size) {
      const std::size_t n =
          std::min<std::size_t>(cfg.batch_size, input.size() - off);
      dedup::Batch batch = pool.acquire();
      dedup::fragment_batch_into(std::span(input).subspan(off, n), index++,
                                 rabin, batch);
      dedup::hash_blocks(batch);
      cache.check(batch);
      dedup::compress_blocks_cpu(batch, cfg);
      if (!writer.append(batch).ok()) {
        std::fprintf(stderr, "[bench] steady-state append failed\n");
        std::exit(1);
      }
      ++res.batches;
      res.blocks += batch.blocks.size();
      pool.release(std::move(batch));
    }
  };
  one_pass();  // warm-up: pools fill, duplicate index saturates
  res.batches = 0;
  res.blocks = 0;
  const std::uint64_t allocs_before = heap_alloc_count();
  one_pass();  // steady state
  res.heap_allocs = heap_alloc_count() - allocs_before;
  return res;
}

/// SPSC throughput across two threads: single-item ops vs 64-item batch
/// ops through the same queue, in items/s. Stalls yield (the CI container
/// can be single-core, where pure spinning burns whole scheduler quanta).
double spsc_ops_per_s(bool batched, std::size_t items) {
  constexpr std::size_t kBurst = 64;
  flow::SpscQueue<std::uint64_t> q(1024);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&] {
    if (batched) {
      std::uint64_t buf[kBurst];
      std::size_t sent = 0;
      while (sent < items) {
        const std::size_t want = std::min(kBurst, items - sent);
        for (std::size_t i = 0; i < want; ++i) buf[i] = sent + i;
        const std::size_t n = q.try_push_n(buf, want);
        if (n == 0) std::this_thread::yield();
        sent += n;
      }
    } else {
      for (std::uint64_t i = 0; i < items;) {
        if (q.try_push(i)) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  std::uint64_t sink = 0;
  std::size_t got = 0;
  if (batched) {
    std::uint64_t buf[kBurst];
    while (got < items) {
      const std::size_t n = q.try_pop_n(buf, kBurst);
      if (n == 0) std::this_thread::yield();
      for (std::size_t i = 0; i < n; ++i) sink += buf[i];
      got += n;
    }
  } else {
    std::uint64_t v;
    while (got < items) {
      if (q.try_pop(v)) {
        sink += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  }
  producer.join();
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(items) /
         std::chrono::duration<double>(t1 - t0).count();
}

/// Telemetry-overhead probe: the SPar-CPU dedup e2e measurement repeated
/// with the process-wide metrics registry and queue-depth sampler live.
/// The hot path then executes the real per-item instrumentation (service
/// histograms, item counters, queue polling); the delta against the
/// metrics-off row is the advertised overhead budget (< 2%).
struct TelemetryOverhead {
  double off_mb_per_s = 0;
  double on_mb_per_s = 0;
  /// (best off - best on) / best off over all pairs, in percent.
  double best_of_pct = 0;
  /// Median of per-pair (off-on)/off deltas, in percent; drift-immune.
  double pair_median_pct = 0;
  /// The gated estimate (min of the two estimators above), in percent.
  /// Positive = slower with metrics on. Can go negative from run noise.
  double delta_pct = 0;
};

TelemetryOverhead telemetry_overhead(double budget_pct) {
  TelemetryOverhead result;
  // A single ~0.2 s multi-thread run is several percent noisy on a shared
  // host — far above the sub-1% true cost — and whole-machine throughput
  // drifts by double digits over minutes, so no single estimator can gate
  // a 2% budget reliably. Interleave off/on runs and combine two
  // estimators with disjoint failure modes, both reported in percent of
  // the metrics-off throughput:
  //   * best-of-each-side — robust to interference spikes, but an early
  //     lucky window on one side poisons it when the host drifts slower;
  //   * median of per-pair deltas — adjacent runs share machine state, so
  //     pairing cancels drift, and the median rejects spike pairs.
  // Both sides of a pair are themselves best-of-2 (one descheduled window
  // must not fake a double-digit pair delta), both sides are measured the
  // same way (no seeding one side from an earlier unpaired row), and the
  // sampling is adaptive: stop only once BOTH estimators are inside the
  // budget, escalate otherwise. The gate charges the smaller estimate — a
  // real regression still fails because it shows up in every pair, and
  // extra samples never close a true gap on either estimator.
  constexpr int kRunsPerSide = 2;
  constexpr int kPairsPerRound = 3;
  constexpr int kMaxRounds = 6;
  double off = 0.0;
  double on = 0.0;
  std::vector<double> pair_deltas;
  for (int round = 0; round < kMaxRounds; ++round) {
    for (int i = 0; i < kPairsPerRound; ++i) {
      E2eRow off_row =
          run_e2e("dedup_e2e_spar_cpu4_parsec",
                  datagen::CorpusKind::kParsecLike, true, kRunsPerSide);
      off = std::max(off, off_row.mb_per_s);
      telemetry::set_enabled(true);
      // 2 ms sampling: plenty for queue-depth trends over ~0.2 s runs. The
      // 500 us default is a per-wakeup preemption of the pipeline on a
      // single-core host — at that rate the sampler thread alone costs ~3%
      // and the budget gate measures the sampler, not the per-item
      // instrumentation.
      (void)telemetry::QueueDepthSampler::Default().start(
          std::chrono::milliseconds(2));
      E2eRow on_row =
          run_e2e("dedup_e2e_spar_cpu4_parsec_metrics",
                  datagen::CorpusKind::kParsecLike, true, kRunsPerSide);
      telemetry::QueueDepthSampler::Default().stop();
      telemetry::set_enabled(false);
      on = std::max(on, on_row.mb_per_s);
      if (off_row.mb_per_s > 0) {
        pair_deltas.push_back((off_row.mb_per_s - on_row.mb_per_s) /
                              off_row.mb_per_s * 100.0);
      }
    }
    result.off_mb_per_s = off;
    result.on_mb_per_s = on;
    result.best_of_pct = off > 0 ? (off - on) / off * 100.0 : 0.0;
    std::vector<double> sorted = pair_deltas;
    std::sort(sorted.begin(), sorted.end());
    result.pair_median_pct =
        sorted.empty()
            ? 0.0
            : (sorted.size() % 2 == 1
                   ? sorted[sorted.size() / 2]
                   : (sorted[sorted.size() / 2 - 1] +
                      sorted[sorted.size() / 2]) / 2.0);
    result.delta_pct = std::min(result.best_of_pct, result.pair_median_pct);
    if (result.best_of_pct <= budget_pct &&
        result.pair_median_pct <= budget_pct) {
      break;
    }
    std::fprintf(stderr,
                 "[bench]   overhead best-of %.2f%% / pair-median %.2f%% > "
                 "%.2f%% after %d pairs; sampling more...\n",
                 result.best_of_pct, result.pair_median_pct, budget_pct,
                 (round + 1) * kPairsPerRound);
  }
  return result;
}

// ---- kernel dispatch levels --------------------------------------------------------

struct KernelRow {
  std::string kernel;
  std::string level;
  double gb_per_s = 0;
};

/// Per-kernel throughput at every dispatch level this host supports, on
/// dedup-shaped data: the e2e config's Rabin cuts over a source-like corpus
/// define the block table, then each kernel runs over the same input/blocks
/// with the level forced. GB/s of input consumed, best of `reps`. The
/// outputs are bit-identical across levels (asserted by the differential
/// suite), so rows differ only in time.
std::vector<KernelRow> kernel_dispatch_rows(int reps) {
  namespace simd = kernels::simd;
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kSourceLike;
  spec.bytes = kE2eInputBytes;
  const std::vector<std::uint8_t> input = datagen::generate(spec);
  const dedup::DedupConfig cfg = e2e_config();
  const kernels::Rabin rabin(cfg.rabin);

  std::vector<std::uint32_t> starts;
  simd::RabinScratch rscratch;
  simd::rabin_boundaries_at(simd::Level::kScalar, rabin, input, starts,
                            &rscratch);
  std::vector<kernels::Sha1Digest> digests(starts.size());
  std::vector<simd::Sha1Job> jobs;
  jobs.reserve(starts.size());
  for (std::size_t k = 0; k < starts.size(); ++k) {
    const std::size_t b = starts[k];
    const std::size_t e =
        k + 1 < starts.size() ? starts[k + 1] : input.size();
    jobs.push_back({input.data() + b, e - b, &digests[k]});
  }
  simd::Sha1Scratch sscratch;

  const double gb = static_cast<double>(input.size()) / 1e9;
  const auto best_of = [&](auto&& fn) {
    double best = 0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::max(best,
                      gb / std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };

  const simd::Level saved = simd::active_level();
  std::vector<KernelRow> rows;
  std::vector<std::uint32_t> cuts;
  for (simd::Level level :
       {simd::Level::kScalar, simd::Level::kSse42, simd::Level::kAvx2}) {
    if (!simd::supports(level)) continue;
    simd::set_active_level(level);
    const std::string name(simd::level_name(level));
    // Explicit-level entry: the bench must measure the real per-level body
    // even where the dispatcher's benchmark-or-skip probe would demote it
    // (the sse42 row documents the regression the demotion exists for).
    rows.push_back({"rabin", name, best_of([&] {
                      simd::rabin_boundaries_at(level, rabin, input, cuts,
                                                &rscratch);
                      benchmark::DoNotOptimize(cuts.data());
                    })});
    rows.push_back({"sha1", name, best_of([&] {
                      simd::sha1_many(jobs.data(), jobs.size(), &sscratch);
                      benchmark::DoNotOptimize(digests.data());
                    })});
    // Pooled sink: the row measures the encoder, not the allocator — this
    // is the same entry the dedup compress stage runs.
    const auto lzss_row = [&](const kernels::LzssParams& params) {
      return best_of([&] {
        PooledBuffer out;
        for (std::size_t k = 0; k < starts.size(); ++k) {
          const std::size_t b = starts[k];
          const std::size_t e =
              k + 1 < starts.size() ? starts[k + 1] : input.size();
          kernels::lzss_encode(input, b, e, params, out);
          benchmark::DoNotOptimize(out.data());
        }
      });
    };
    rows.push_back({"lzss_match", name, lzss_row(cfg.lzss)});
    // Seed-configuration reference (brute-force window 256): the CI perf
    // gate asserts chain/legacy from the same run, immune to host noise.
    kernels::LzssParams legacy = cfg.lzss;
    legacy.mode = kernels::LzssMode::kLegacy;
    legacy.window_size = 256;
    legacy.chain_depth = 8;
    rows.push_back({"lzss_match_legacy", name, lzss_row(legacy)});
  }
  simd::set_active_level(saved);
  // Single-stream whole-input hash — the container's input-digest path at
  // writer.finish(). SHA-NI is orthogonal to the level matrix (its own
  // CPUID bit), so these rows sit outside the per-level loop: the scalar
  // row is the Sha1 context, the sha_ni row the SHA-extensions body.
  kernels::Sha1Digest whole{};
  rows.push_back({"sha1_stream", "scalar", best_of([&] {
                    whole = kernels::Sha1::hash(input);
                    benchmark::DoNotOptimize(whole.data());
                  })});
  if (simd::sha1_ni_available()) {
    rows.push_back({"sha1_stream", "sha_ni", best_of([&] {
                      whole = simd::sha1_hash_ni(input);
                      benchmark::DoNotOptimize(whole.data());
                    })});
  }
  return rows;
}

void write_json(const std::string& path, const std::vector<E2eRow>& rows,
                const std::vector<KernelRow>& kernels,
                const SteadyResult& steady, double spsc_single,
                double spsc_batch, const TelemetryOverhead& overhead,
                bool quick) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"bench\": \"micro_substrate\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"config\": {\"input_bytes\": " << kE2eInputBytes
      << ", \"batch_size\": " << e2e_config().batch_size
      << ", \"rabin_mask\": " << e2e_config().rabin.mask
      << ", \"lzss_mode\": \"" << kernels::lzss_mode_name(g_lzss_mode)
      << "\", \"lzss_window\": " << e2e_config().lzss.window_size
      << ", \"lzss_chain_depth\": " << e2e_config().lzss.chain_depth
      << "},\n";
  out << "  \"dedup_e2e\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const E2eRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"mb_per_s\": " << r.mb_per_s
        << ", \"baseline_mb_per_s\": " << r.baseline_mb_per_s
        << ", \"speedup_vs_baseline\": "
        << (r.baseline_mb_per_s > 0 ? r.mb_per_s / r.baseline_mb_per_s : 0)
        << ", \"input_bytes\": " << r.input_bytes
        << ", \"archive_bytes\": " << r.archive_bytes
        << ", \"archive_sha1\": \"" << r.archive_sha1
        << "\", \"run_heap_allocs\": " << r.run_heap_allocs << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& k = kernels[i];
    out << "    {\"kernel\": \"" << k.kernel << "\", \"level\": \"" << k.level
        << "\", \"gb_per_s\": " << k.gb_per_s << "}"
        << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"simd\": {\"active_level\": \""
      << kernels::simd::level_name(kernels::simd::active_level())
      << "\", \"best_supported\": \""
      << kernels::simd::level_name(kernels::simd::best_supported())
      << "\", \"rabin_effective_level\": \""
      << kernels::simd::level_name(kernels::simd::rabin_effective_level())
      << "\", \"sha1_ni\": "
      << (kernels::simd::sha1_ni_available() ? "true" : "false") << "},\n";
  out << "  \"dedup_steady_state\": {\"batches\": " << steady.batches
      << ", \"blocks\": " << steady.blocks
      << ", \"heap_allocs\": " << steady.heap_allocs
      << ", \"sanitized\": " << (HS_BENCH_SANITIZED ? "true" : "false")
      << "},\n";
  out << "  \"spsc_queue\": {\"single_ops_per_s\": " << spsc_single
      << ", \"batch64_ops_per_s\": " << spsc_batch << "},\n";
  out << "  \"telemetry_overhead\": {\"off_mb_per_s\": "
      << overhead.off_mb_per_s << ", \"on_mb_per_s\": " << overhead.on_mb_per_s
      << ", \"best_of_pct\": " << overhead.best_of_pct
      << ", \"pair_median_pct\": " << overhead.pair_median_pct
      << ", \"delta_pct\": " << overhead.delta_pct << "},\n";
  const PoolCounters pc = BufferPool::Default().counters();
  out << "  \"buffer_pool\": {\"hits\": " << pc.hits
      << ", \"misses\": " << pc.misses
      << ", \"bytes_allocated\": " << pc.bytes_allocated
      << ", \"bytes_cached\": " << pc.bytes_cached
      << ", \"bytes_outstanding\": " << pc.bytes_outstanding << "}\n";
  out << "}\n";
}

int run_e2e_suite(const CliArgs& args) {
  const bool quick = args.get_bool("quick", false);
  const int reps =
      static_cast<int>(args.get_int("reps", quick ? 1 : 3));
  const std::string json_path =
      args.get_string("json", "BENCH_micro.json");
  const std::string lzss_name = args.get_string("lzss", "chain");
  if (!kernels::parse_lzss_mode(lzss_name, g_lzss_mode)) {
    std::fprintf(stderr,
                 "[bench] unknown --lzss='%s' (expected legacy|chain)\n",
                 lzss_name.c_str());
    return 2;
  }

  std::vector<E2eRow> rows;
  std::fprintf(stderr, "[bench] dedup end-to-end (%d rep%s per row)...\n",
               reps, reps == 1 ? "" : "s");
  rows.push_back(run_e2e("dedup_e2e_sequential_parsec",
                         datagen::CorpusKind::kParsecLike, false, reps));
  rows.push_back(run_e2e("dedup_e2e_sequential_source",
                         datagen::CorpusKind::kSourceLike, false, reps));
  rows.push_back(run_e2e("dedup_e2e_sequential_silesia",
                         datagen::CorpusKind::kSilesiaLike, false, reps));
  rows.push_back(run_e2e("dedup_e2e_spar_cpu4_parsec",
                         datagen::CorpusKind::kParsecLike, true, reps));

  std::fprintf(stderr, "[bench] kernel dispatch levels...\n");
  const std::vector<KernelRow> kernels = kernel_dispatch_rows(reps);

  const double overhead_budget_pct =
      args.get_double("check-telemetry-overhead", 2.0);
  std::fprintf(stderr, "[bench] telemetry overhead probe...\n");
  const TelemetryOverhead overhead = telemetry_overhead(overhead_budget_pct);

  std::fprintf(stderr, "[bench] steady-state allocation probe...\n");
  const SteadyResult steady = steady_state_allocs();
  std::fprintf(stderr, "[bench] spsc queue ops...\n");
  const std::size_t spsc_items = quick ? (1u << 18) : (1u << 20);
  const double spsc_single = spsc_ops_per_s(false, spsc_items);
  const double spsc_batch = spsc_ops_per_s(true, spsc_items);

  write_json(json_path, rows, kernels, steady, spsc_single, spsc_batch,
             overhead, quick);

  std::printf("dedup end-to-end (input %.0f MB, best of %d, lzss=%s):\n",
              kE2eInputBytes / 1e6, reps,
              kernels::lzss_mode_name(g_lzss_mode).data());
  for (const E2eRow& r : rows) {
    std::printf("  %-32s %7.2f MB/s", r.name.c_str(), r.mb_per_s);
    if (r.baseline_mb_per_s > 0) {
      std::printf("  (baseline %.2f, %.2fx)", r.baseline_mb_per_s,
                  r.mb_per_s / r.baseline_mb_per_s);
    }
    std::printf("\n");
  }
  std::printf("kernel dispatch levels (GB/s, dispatch=%s):\n",
              kernels::simd::level_name(kernels::simd::active_level()).data());
  for (const KernelRow& k : kernels) {
    std::printf("  %-12s %-8s %7.3f GB/s\n", k.kernel.c_str(),
                k.level.c_str(), k.gb_per_s);
  }
  std::printf("steady-state pass: %llu batches, %llu blocks, %llu heap "
              "allocs%s\n",
              static_cast<unsigned long long>(steady.batches),
              static_cast<unsigned long long>(steady.blocks),
              static_cast<unsigned long long>(steady.heap_allocs),
              HS_BENCH_SANITIZED ? " (sanitized build: not asserted)" : "");
  std::printf("spsc queue: %.1fM single ops/s, %.1fM batch-64 ops/s\n",
              spsc_single / 1e6, spsc_batch / 1e6);
  std::printf("telemetry overhead: %.2f MB/s off, %.2f MB/s on "
              "(best-of %+.2f%%, pair-median %+.2f%%, gated %+.2f%%)\n",
              overhead.off_mb_per_s, overhead.on_mb_per_s,
              overhead.best_of_pct, overhead.pair_median_pct,
              overhead.delta_pct);
  std::printf("json written to %s\n", json_path.c_str());

  if (args.get_bool("check-steady-allocs", false) && !HS_BENCH_SANITIZED &&
      steady.heap_allocs != 0) {
    std::fprintf(stderr,
                 "[bench] FAIL: steady-state dedup pipeline performed %llu "
                 "heap allocations (expected 0)\n",
                 static_cast<unsigned long long>(steady.heap_allocs));
    return 1;
  }
  if (args.has("check-telemetry-overhead") &&
      args.get_string("check-telemetry-overhead", "") != "false") {
    const double budget = overhead_budget_pct;
    if (overhead.delta_pct > budget) {
      std::fprintf(stderr,
                   "[bench] FAIL: telemetry overhead %.2f%% exceeds the "
                   "%.0f%% budget\n",
                   overhead.delta_pct, budget);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace hs

int main(int argc, char** argv) {
  bool gbench = false;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gbench") {
      gbench = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (gbench) {
    int rest_argc = static_cast<int>(rest.size());
    benchmark::Initialize(&rest_argc, rest.data());
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  auto args = hs::CliArgs::Parse(static_cast<int>(rest.size()), rest.data());
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  return hs::run_e2e_suite(args.value());
}
