// Out-of-process load generator for the serve wire front-end.
//
// Two modes, designed to run as separate processes so the service's
// admission control is exercised over a real transport:
//
//   serve_wire --listen [--port=0] [--seconds=30] [--workers=4] [--elastic]
//     Starts a Service (+ simulated GPUs) behind a WireServer, prints
//     "listening <port>" on stdout, serves for --seconds, then prints a
//     "served ..." summary and exits 0 (non-zero on startup failure).
//
//   serve_wire --drive --port=P [--seconds=5] [--connections=4] [--tenants=3]
//     Closed-loop driver: each connection synchronously round-trips
//     alternating mandel/dedup jobs across --tenants tenants, then the
//     process prints an aggregate "drive ..." summary. Exits non-zero when
//     no job completed, a response failed to parse, or the final stats
//     round-trip fails — the CI smoke gate.
//
// Example smoke (two processes, ephemeral port):
//   serve_wire --listen --seconds=30 > wire.log &
//   port=$(awk '/^listening/{print $2; exit}' wire.log)
//   serve_wire --drive --port=$port --seconds=5 --connections=4
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "cudax/cudax.hpp"
#include "gpusim/device.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace hs {
namespace {

using Clock = std::chrono::steady_clock;

int run_listen(const CliArgs& args) {
  const int devices = static_cast<int>(args.get_int("devices", 2));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const double seconds = args.get_double("seconds", 30.0);
  auto machine = gpusim::Machine::Create(devices,
                                         gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  serve::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.tenant_queue_capacity =
      static_cast<std::size_t>(args.get_int("tenant-queue", 64));
  cfg.tenant_quota_queued =
      static_cast<std::size_t>(args.get_int("quota-queued", 0));
  cfg.tenant_quota_inflight =
      static_cast<std::size_t>(args.get_int("quota-inflight", 0));
  if (args.get_bool("elastic", false)) {
    cfg.scale.min_workers = static_cast<int>(args.get_int("min-workers", 1));
    cfg.scale.max_workers =
        static_cast<int>(args.get_int("max-workers", 2 * workers));
  }
  serve::Service service(machine.get(), cfg);
  if (Status s = service.start(); !s.ok()) {
    std::fprintf(stderr, "[wire] service start: %s\n", s.message().c_str());
    return 1;
  }
  serve::WireServerConfig wire_cfg;
  wire_cfg.port = static_cast<int>(args.get_int("port", 0));
  serve::WireServer server(&service, wire_cfg);
  if (Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "[wire] server start: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("listening %d\n", server.port());
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  server.stop();
  (void)service.stop();
  const serve::ServiceStats stats = service.stats();
  std::printf("served accepted=%llu completed=%llu shed=%llu quota=%llu "
              "scale_ups=%llu scale_downs=%llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.quota_rejects),
              static_cast<unsigned long long>(stats.scale_ups),
              static_cast<unsigned long long>(stats.scale_downs));
  cudax::unbind_machine();
  return 0;
}

struct DriveTally {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> err{0};
  std::atomic<std::uint64_t> transport_errors{0};
  std::atomic<std::uint64_t> latency_ns_sum{0};
};

void drive_connection(const std::string& host, int port, double seconds,
                      int tenants, int dim, int niter,
                      std::uint64_t payload_bytes, int conn_id,
                      DriveTally* tally) {
  serve::WireClient client;
  if (!client.connect(host, port).ok()) {
    tally->transport_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  serve::JobRequest mandel;
  mandel.kind = serve::JobKind::kMandel;
  mandel.mandel.dim = dim;
  mandel.mandel.niter = niter;
  serve::JobRequest dedup;
  dedup.kind = serve::JobKind::kDedup;
  dedup.payload.resize(payload_bytes);
  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  std::uint64_t n = static_cast<std::uint64_t>(conn_id);
  while (Clock::now() < deadline) {
    const std::string tenant = "t" + std::to_string(n % tenants);
    const std::string line = serve::encode_job_line(
        tenant, n % 2 == 0 ? mandel : dedup);
    ++n;
    const auto t0 = Clock::now();
    auto resp = client.call(line);
    if (!resp.ok()) {
      tally->transport_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    switch (resp.value().kind) {
      case serve::WireResponse::Kind::kOk:
        tally->ok.fetch_add(1, std::memory_order_relaxed);
        tally->latency_ns_sum.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
        break;
      case serve::WireResponse::Kind::kRejected:
        tally->rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        tally->err.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  (void)client.call("quit");
  client.close();
}

int run_drive(const CliArgs& args) {
  const std::string host = args.get_string("host", "127.0.0.1");
  const int port = static_cast<int>(args.get_int("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "[wire] --drive needs --port\n");
    return 2;
  }
  const double seconds = args.get_double("seconds", 5.0);
  const int connections = static_cast<int>(args.get_int("connections", 4));
  const int tenants = static_cast<int>(args.get_int("tenants", 3));
  const int dim = static_cast<int>(args.get_int("dim", 32));
  const int niter = static_cast<int>(args.get_int("niter", 300));
  const std::uint64_t payload_bytes = args.get_bytes("payload", 16 * 1024);

  DriveTally tally;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(drive_connection, host, port, seconds,
                         tenants < 1 ? 1 : tenants, dim, niter, payload_bytes,
                         c, &tally);
  }
  for (std::thread& t : threads) t.join();

  // One more round-trip for the server-side view; also verifies the stats
  // verb end to end.
  std::uint64_t server_completed = 0;
  int server_workers = 0;
  bool stats_ok = false;
  serve::WireClient probe;
  if (probe.connect(host, port).ok()) {
    if (auto resp = probe.call("stats");
        resp.ok() && resp.value().kind == serve::WireResponse::Kind::kStats) {
      server_completed = resp.value().completed;
      server_workers = resp.value().workers;
      stats_ok = true;
    }
    probe.close();
  }

  const std::uint64_t ok = tally.ok.load();
  const double mean_ms =
      ok > 0 ? static_cast<double>(tally.latency_ns_sum.load()) /
                   static_cast<double>(ok) / 1e6
             : 0.0;
  std::printf("drive ok=%llu rejected=%llu err=%llu transport_errors=%llu "
              "mean_rtt_ms=%.3f server_completed=%llu server_workers=%d\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(tally.rejected.load()),
              static_cast<unsigned long long>(tally.err.load()),
              static_cast<unsigned long long>(tally.transport_errors.load()),
              mean_ms, static_cast<unsigned long long>(server_completed),
              server_workers);
  if (ok == 0) {
    std::fprintf(stderr, "[wire] no job completed over the wire\n");
    return 1;
  }
  if (tally.transport_errors.load() != 0 || tally.err.load() != 0) {
    std::fprintf(stderr, "[wire] transport/protocol errors\n");
    return 1;
  }
  if (!stats_ok) {
    std::fprintf(stderr, "[wire] stats round-trip failed\n");
    return 1;
  }
  return 0;
}

int run(int argc, const char** argv) {
  auto parsed = CliArgs::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (args.get_bool("listen", false)) return run_listen(args);
  if (args.get_bool("drive", false)) return run_drive(args);
  std::fprintf(stderr,
               "usage: serve_wire --listen [--port=0 --seconds=30] |\n"
               "       serve_wire --drive --port=P [--seconds=5 "
               "--connections=4]\n");
  return 2;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
