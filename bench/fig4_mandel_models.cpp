// Fig. 4 reproduction: "Mandelbrot results" across programming models.
//
// Rows match the paper's bars: sequential; CPU-only SPar/TBB/FastFlow with
// 19 workers; GPU-only CUDA/OpenCL with 4 memory spaces; and every
// multicore-model x GPU-API combination with 10 workers, on 1 and 2 GPUs.
// TBB uses max_number_of_live_tokens = 38 (CPU-only) / 50 (GPU-combined),
// the paper's tuned values.
//
// Flags: --paper-scale | --quick | --dim=N --niter=N | --csv
//        --cpu-workers=N (19) | --combined-workers=N (10) | --batch=N (32)
//        --sched=static|adaptive (default static). static reproduces the
//        figure bit-for-bit; adaptive appends GPU-only and combined rows
//        where the batch size is AIMD-discovered and multi-GPU dispatch is
//        least-loaded (DESIGN.md §4h).
//        --json=PATH (also write every row — label, modeled time, speedup —
//        as machine-readable JSON, same shape as the fig1/fig5 outputs)
//        --trace=FILE --metrics=FILE (run the functional TBB-equivalent
//        token pipeline and the SPar+CUDA pipeline with runtime telemetry
//        on, exporting a measured Chrome trace and/or a metrics dump:
//        .json gets JSON, anything else Prometheus text)
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "cudax/cudax.hpp"
#include "gpusim/device.hpp"
#include "mandel/calibrate.hpp"
#include "mandel/modeled.hpp"
#include "mandel/pipelines.hpp"
#include "sched/sched.hpp"

namespace hs {
namespace {

using benchtool::speedup_cell;
using mandel::CpuModel;
using mandel::GpuApi;
using mandel::GpuMode;
using mandel::ModeledConfig;
using mandel::RunResult;

/// --trace/--metrics demo: the real (functional) pipelines of two of the
/// figure's models — the TBB-equivalent token pipeline and SPar+CUDA —
/// with the process-wide telemetry singletons capturing. Returns 0 on
/// success.
int run_telemetry_demo(const benchtool::TelemetryOutputs& outs,
                       kernels::MandelParams params) {
  // The functional pipelines compute for real; keep the workload modest.
  params.dim = std::min(params.dim, 256);
  params.niter = std::min(params.niter, 2000);
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  benchtool::begin_telemetry_capture(outs);
  auto tbb_image = mandel::render_taskx(params, 4, 8);
  flow::FailureReport failures;
  auto spar_image = mandel::render_spar_cuda(params, 4, *machine, nullptr, {},
                                             nullptr, &failures);
  int rc = benchtool::end_telemetry_capture(outs);
  cudax::unbind_machine();
  for (const auto* image : {&tbb_image, &spar_image}) {
    if (!image->ok()) {
      std::cerr << "[bench] telemetry demo run failed: "
                << image->status().ToString() << "\n";
      return 1;
    }
  }
  if (!failures.ok()) {
    std::cerr << "[bench] unrecovered stage failures: " << failures.ToString()
              << "\n";
    return 1;
  }
  if (tbb_image.value() != spar_image.value()) {
    std::cerr << "[bench] telemetry demo: taskx and spar+cuda images "
                 "differ\n";
    return 1;
  }
  return rc;
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  kernels::MandelParams params = benchtool::mandel_workload(args);
  mandel::IterationMap map = benchtool::load_map(args, params);

  auto batch_or = args.get_positive_int("batch", 32);
  auto cpu_workers_or = args.get_positive_int("cpu-workers", 19);
  auto combined_workers_or = args.get_positive_int("combined-workers", 10);
  auto sched_or = sched::parse_sched_mode(args.get_string("sched", "static"));
  for (const Status& s :
       {batch_or.status(), cpu_workers_or.status(),
        combined_workers_or.status(), sched_or.status()}) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  const sched::SchedMode sched_mode = sched_or.value();

  ModeledConfig cfg;
  cfg.batch_lines = static_cast<int>(batch_or.value());
  if (args.get_bool("calibrate", true)) {
    cfg = mandel::calibrate_to_paper(map, {}, cfg);
  }
  cfg.cpu_workers = static_cast<int>(cpu_workers_or.value());
  cfg.combined_workers = static_cast<int>(combined_workers_or.value());

  Table table("Fig. 4 — Mandelbrot results across programming models "
              "(modeled)");
  table.set_header({"version", "modeled time", "speedup"});

  const std::string json_path = args.get_string("json", "");
  struct JsonRow {
    std::string label;
    double modeled_seconds;
    double speedup;
  };
  std::vector<JsonRow> json_rows;

  RunResult seq = run_sequential(map, cfg);
  bool mismatch = false;
  auto add = [&](RunResult r, const std::string& label = "") {
    if (!label.empty()) r.label = label;
    if (r.checksum != seq.checksum) {
      std::cerr << "[bench] CHECKSUM MISMATCH in '" << r.label << "'\n";
      mismatch = true;
    }
    table.add_row({r.label, format_seconds(r.modeled_seconds),
                   speedup_cell(seq.modeled_seconds, r.modeled_seconds)});
    json_rows.push_back({r.label, r.modeled_seconds,
                         r.modeled_seconds > 0
                             ? seq.modeled_seconds / r.modeled_seconds
                             : 0});
  };

  add(seq);
  table.add_separator();

  // CPU-only rows: 19 workers, TBB with 38 tokens (2 x 19).
  {
    ModeledConfig c = cfg;
    c.tbb_tokens = 38;
    for (CpuModel m :
         {CpuModel::kSpar, CpuModel::kTbb, CpuModel::kFastFlow}) {
      add(run_cpu_pipeline(map, c, m));
    }
  }
  table.add_separator();

  // GPU-only rows: single host thread, 4 memory spaces (the paper's best
  // single-thread configuration), 1 and 2 GPUs.
  for (int devices : {1, 2}) {
    ModeledConfig c = cfg;
    c.devices = devices;
    c.buffers_per_gpu = 4 / devices;  // 4x total memory, as in §IV-A
    for (GpuApi api : {GpuApi::kCuda, GpuApi::kOpenCl}) {
      add(run_gpu_single_thread(map, c, api, GpuMode::kBatched));
    }
  }
  table.add_separator();

  // Combined rows: 10 workers, TBB with 50 tokens (5 x 10).
  for (int devices : {1, 2}) {
    ModeledConfig c = cfg;
    c.devices = devices;
    c.tbb_tokens = 50;
    for (CpuModel m :
         {CpuModel::kSpar, CpuModel::kTbb, CpuModel::kFastFlow}) {
      for (GpuApi api : {GpuApi::kCuda, GpuApi::kOpenCl}) {
        add(run_combined(map, c, m, api));
      }
    }
    if (devices == 1) table.add_separator();
  }

  // Adaptive rows: same GPU-only and combined shapes, but the batch size
  // is discovered by the AIMD sizer and multi-GPU dispatch is least-loaded
  // instead of the per-worker round-robin. No paper bars exist for these;
  // compare against the hand-tuned static rows above.
  if (sched_mode == sched::SchedMode::kAdaptive) {
    table.add_separator();
    for (int devices : {1, 2}) {
      ModeledConfig c = cfg;
      c.sched = sched::SchedMode::kAdaptive;
      c.devices = devices;
      c.buffers_per_gpu = 4 / devices;
      for (GpuApi api : {GpuApi::kCuda, GpuApi::kOpenCl}) {
        add(run_gpu_single_thread(map, c, api, GpuMode::kBatched));
      }
    }
    table.add_separator();
    for (int devices : {1, 2}) {
      ModeledConfig c = cfg;
      c.sched = sched::SchedMode::kAdaptive;
      c.devices = devices;
      c.tbb_tokens = 50;
      for (CpuModel m :
           {CpuModel::kSpar, CpuModel::kTbb, CpuModel::kFastFlow}) {
        for (GpuApi api : {GpuApi::kCuda, GpuApi::kOpenCl}) {
          auto r = run_combined(map, c, m, api);
          if (m == CpuModel::kSpar && api == GpuApi::kCuda) {
            std::fprintf(stderr,
                         "[bench] combined adaptive %dgpu: sizer at %llu "
                         "lines/batch\n",
                         devices,
                         static_cast<unsigned long long>(
                             r.adaptive_batch_lines));
          }
          add(std::move(r));
        }
      }
    }
  }

  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
    std::cout
        << "\npaper findings reproduced: all models perform similarly; with "
           "1 GPU the single-thread versions match the combined ones; with "
           "2 GPUs a single host thread degrades while multicore+GPU "
           "combinations gain (see EXPERIMENTS.md).\n";
  }
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "[bench] cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"fig4_mandel_models\",\n";
    json << "  \"dim\": " << params.dim << ",\n";
    json << "  \"niter\": " << params.niter << ",\n";
    json << "  \"cpu_workers\": " << cfg.cpu_workers << ",\n";
    json << "  \"combined_workers\": " << cfg.combined_workers << ",\n";
    json << "  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      json << "    {\"label\": \"" << r.label
           << "\", \"modeled_seconds\": " << r.modeled_seconds
           << ", \"speedup\": " << r.speedup << "}"
           << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "[bench] json written to %s\n", json_path.c_str());
  }
  if (const auto outs = benchtool::telemetry_outputs(args); outs.active()) {
    if (int rc = run_telemetry_demo(outs, params); rc != 0) return rc;
  }
  return mismatch ? 1 : 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
