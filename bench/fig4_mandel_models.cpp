// Fig. 4 reproduction: "Mandelbrot results" across programming models.
//
// Rows match the paper's bars: sequential; CPU-only SPar/TBB/FastFlow with
// 19 workers; GPU-only CUDA/OpenCL with 4 memory spaces; and every
// multicore-model x GPU-API combination with 10 workers, on 1 and 2 GPUs.
// TBB uses max_number_of_live_tokens = 38 (CPU-only) / 50 (GPU-combined),
// the paper's tuned values.
//
// Flags: --paper-scale | --quick | --dim=N --niter=N | --csv
//        --cpu-workers=N (19) | --combined-workers=N (10) | --batch=N (32)
#include <iostream>

#include "bench_common.hpp"
#include "mandel/calibrate.hpp"
#include "mandel/modeled.hpp"

namespace hs {
namespace {

using benchtool::speedup_cell;
using mandel::CpuModel;
using mandel::GpuApi;
using mandel::GpuMode;
using mandel::ModeledConfig;
using mandel::RunResult;

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  kernels::MandelParams params = benchtool::mandel_workload(args);
  mandel::IterationMap map = benchtool::load_map(args, params);

  ModeledConfig cfg;
  cfg.batch_lines = static_cast<int>(args.get_int("batch", 32));
  if (args.get_bool("calibrate", true)) {
    cfg = mandel::calibrate_to_paper(map, {}, cfg);
  }
  cfg.cpu_workers = static_cast<int>(args.get_int("cpu-workers", 19));
  cfg.combined_workers =
      static_cast<int>(args.get_int("combined-workers", 10));

  Table table("Fig. 4 — Mandelbrot results across programming models "
              "(modeled)");
  table.set_header({"version", "modeled time", "speedup"});

  RunResult seq = run_sequential(map, cfg);
  bool mismatch = false;
  auto add = [&](RunResult r, const std::string& label = "") {
    if (!label.empty()) r.label = label;
    if (r.checksum != seq.checksum) {
      std::cerr << "[bench] CHECKSUM MISMATCH in '" << r.label << "'\n";
      mismatch = true;
    }
    table.add_row({r.label, format_seconds(r.modeled_seconds),
                   speedup_cell(seq.modeled_seconds, r.modeled_seconds)});
  };

  add(seq);
  table.add_separator();

  // CPU-only rows: 19 workers, TBB with 38 tokens (2 x 19).
  {
    ModeledConfig c = cfg;
    c.tbb_tokens = 38;
    for (CpuModel m :
         {CpuModel::kSpar, CpuModel::kTbb, CpuModel::kFastFlow}) {
      add(run_cpu_pipeline(map, c, m));
    }
  }
  table.add_separator();

  // GPU-only rows: single host thread, 4 memory spaces (the paper's best
  // single-thread configuration), 1 and 2 GPUs.
  for (int devices : {1, 2}) {
    ModeledConfig c = cfg;
    c.devices = devices;
    c.buffers_per_gpu = 4 / devices;  // 4x total memory, as in §IV-A
    for (GpuApi api : {GpuApi::kCuda, GpuApi::kOpenCl}) {
      add(run_gpu_single_thread(map, c, api, GpuMode::kBatched));
    }
  }
  table.add_separator();

  // Combined rows: 10 workers, TBB with 50 tokens (5 x 10).
  for (int devices : {1, 2}) {
    ModeledConfig c = cfg;
    c.devices = devices;
    c.tbb_tokens = 50;
    for (CpuModel m :
         {CpuModel::kSpar, CpuModel::kTbb, CpuModel::kFastFlow}) {
      for (GpuApi api : {GpuApi::kCuda, GpuApi::kOpenCl}) {
        add(run_combined(map, c, m, api));
      }
    }
    if (devices == 1) table.add_separator();
  }

  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
    std::cout
        << "\npaper findings reproduced: all models perform similarly; with "
           "1 GPU the single-thread versions match the combined ones; with "
           "2 GPUs a single host thread degrades while multicore+GPU "
           "combinations gain (see EXPERIMENTS.md).\n";
  }
  return mismatch ? 1 : 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
