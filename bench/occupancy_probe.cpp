// §IV-A occupancy analysis: "we need to process 30.7 lines on each kernel
// call" to fill the Titan XP's 61,440 resident threads.
//
// Sweeps the lines-per-kernel batch size and reports modeled time, kernel
// launches, and device compute utilization, locating the break-even where
// larger batches stop helping. Also exposes the DESIGN.md ablations:
//   --model=sum    lane-sum divergence model instead of warp-max
//   --no-overlap   copies share the compute engine (no copy/compute overlap)
//
// Flags: --quick | --dim=N --niter=N | --batches=1,2,4,... | --csv
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "mandel/calibrate.hpp"
#include "mandel/modeled.hpp"

namespace hs {
namespace {

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();
  kernels::MandelParams params = benchtool::mandel_workload(args);
  mandel::IterationMap map = benchtool::load_map(args, params);

  std::vector<int> batches;
  {
    std::stringstream ss(args.get_string("batches", "1,2,4,8,16,24,31,32,48,64"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      int v = std::atoi(tok.c_str());
      if (v > 0) batches.push_back(v);
    }
  }
  const bool sum_model = args.get_string("model", "max") == "sum";
  const bool no_overlap = args.get_bool("no-overlap", false) ||
                          !args.get_bool("overlap", true);

  // The resident-thread arithmetic from the paper.
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::TitanXP();
  const std::uint64_t resident =
      static_cast<std::uint64_t>(spec.sm_count) * spec.max_threads_per_sm;
  std::cout << "device: " << spec.name << ", " << spec.sm_count << " SMs x "
            << spec.max_threads_per_sm << " resident threads = " << resident
            << " device-wide\n";
  std::cout << "lines of " << params.dim
            << " pixels to fill the device: " << format_fixed(
                   static_cast<double>(resident) / params.dim, 1)
            << " (the paper's 30.7 at dim=2000)\n";
  if (sum_model) std::cout << "[ablation] divergence model: lane-sum\n";
  if (no_overlap) std::cout << "[ablation] copy/compute overlap disabled\n";
  std::cout << "\n";

  Table table("Occupancy probe — lines per kernel call sweep");
  table.set_header({"batch lines", "modeled time", "speedup vs batch=1",
                    "kernel launches", "compute engine busy"});

  double base = 0;
  for (int batch : batches) {
    mandel::ModeledConfig cfg;
    if (args.get_bool("calibrate", true)) {
      cfg = mandel::calibrate_to_paper(map, {}, cfg);
    }
    cfg.batch_lines = batch;
    cfg.buffers_per_gpu = 2;
    if (sum_model) cfg.divergence = gpusim::DivergenceModel::kSumLane;
    cfg.copy_compute_overlap = !no_overlap;
    mandel::RunResult r = run_gpu_single_thread(
        map, cfg, mandel::GpuApi::kCuda, mandel::GpuMode::kBatched);
    if (base == 0) base = r.modeled_seconds;
    table.add_row({std::to_string(batch), format_seconds(r.modeled_seconds),
                   benchtool::speedup_cell(base, r.modeled_seconds),
                   std::to_string(r.kernel_launches),
                   format_fixed(r.gpu_compute_utilization * 100, 0) + "%"});
  }

  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
