// Cluster-scale sweep: the Fig. 5 (dedup) and Fig. 1 (mandel) schedules on
// a simulated multi-node cluster, comparing round-robin, byte-greedy, and
// makespan-aware stage placement.
//
// On every invocation the bench first proves the 1-node topology byte-
// identical to the single-host modeled runners (same modeled seconds,
// throughput, checksum and kernel-launch counts, compared with exact
// floating-point equality) and exits non-zero on any divergence — the
// cluster layer is a strict superset of the single-host model, not a fork.
// The 1-node dedup SPar+CUDA and mandel combined runs double as profiling
// runs: they fill the stage graphs' measured per-stage compute profiles
// (StageCompute) that power the makespan estimator and place_makespan.
//
// It then sweeps node counts — 1/2/4/8 homogeneous full meshes plus two
// heterogeneous parsed-spec topologies (unequal GPUs per node incl. a
// GPU-less node; one slow link) — running every requested placer per cell
// and cross-checking two estimator pins on every run:
//   * bytes, exactly: fabric_bytes - shard_bytes == predicted_cross_bytes;
//   * time, within a stated band: DES makespan within
//     [estimate, estimate * kEstimatorPinFactor].
// With all three placers swept it also gates placement quality:
// place_makespan's estimated AND DES makespan must be <= min(RR, greedy)
// on every cell, strictly better than greedy on dedup 8-node and than
// round-robin on mandel 2-node (the PR-8 inversion cells).
//
// Flags: --nodes=N       sweep only N nodes (default sweep: 1, 2, 4, 8
//                        plus the hetero topologies)
//        --placement=rr|greedy|makespan|all  placers to run (default all)
//        --topo=FILE     sweep a parsed text-spec topology instead of the
//                        built-in meshes (each workload still runs with its
//                        own GPU spec; the file contributes the shape:
//                        cores, GPU counts, links)
//        --input-size=BYTES (8 MB) --batch-size=BYTES (256 KiB)
//        --replicas=N    (19) dedup farm replicas
//        --quick | --paper-scale | --dim=N --niter=N  mandel workload
//        --batch=N       (32) mandel lines per kernel call
//        --gpus=N        (2) GPUs per node
//        --bw=BYTES/S    (12.5GB) per-link bandwidth  --lat=S (2us) latency
//        --json=PATH     machine-readable rows (e.g. BENCH_cluster.json)
//        --trace=FILE    Chrome trace of the largest dedup greedy run
//        --csv
#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "cluster/makespan.hpp"
#include "cluster/modeled.hpp"
#include "datagen/corpus.hpp"
#include "dedup/modeled.hpp"
#include "mandel/calibrate.hpp"
#include "mandel/modeled.hpp"

namespace hs {
namespace {

using cluster::ClusterRunOptions;
using cluster::ClusterRunResult;
using cluster::Placement;
using cluster::StageGraph;
using cluster::Topology;
using dedup::Fig5Backend;

// Heterogeneous sweep topologies, written as text specs so the sweep
// exercises the parser end to end. GPU counts are the point: n3 of the
// first spec has none (GPU stages must never land there), and the second
// spec's n2<->n3 link is 10x slower and 10x higher latency than the rest.
constexpr char kHeteroGpusSpec[] = R"(# 4 nodes, unequal GPUs, n3 CPU-only
node n0 cores=20 gpus=2
node n1 cores=20 gpus=1
node n2 cores=20 gpus=2
node n3 cores=20 gpus=0
link n0 n1 bw=12.5GB lat=2us
link n0 n2 bw=12.5GB lat=2us
link n0 n3 bw=12.5GB lat=2us
link n1 n2 bw=12.5GB lat=2us
link n1 n3 bw=12.5GB lat=2us
link n2 n3 bw=12.5GB lat=2us
)";

constexpr char kHeteroLinkSpec[] = R"(# 4 nodes, one slow link
node n0 cores=20 gpus=2
node n1 cores=20 gpus=2
node n2 cores=20 gpus=2
node n3 cores=20 gpus=2
link n0 n1 bw=12.5GB lat=2us
link n0 n2 bw=12.5GB lat=2us
link n0 n3 bw=12.5GB lat=2us
link n1 n2 bw=12.5GB lat=2us
link n1 n3 bw=12.5GB lat=2us
link n2 n3 bw=1.25GB lat=20us
)";

struct PlacerResult {
  std::uint64_t predicted_cross_bytes = 0;
  double estimated_makespan_s = 0;
  double modeled_seconds = 0;
};

struct JsonRow {
  std::string workload;
  std::string topo;
  int nodes = 0;
  std::string placement;
  std::uint64_t predicted_cross_bytes = 0;
  std::uint64_t fabric_bytes = 0;
  std::uint64_t shard_bytes = 0;
  double estimated_makespan_s = 0;
  double modeled_seconds = 0;
  double throughput_mb_s = 0;
  std::uint64_t kernel_launches = 0;
};

/// Per-cell quality record: one PlacerResult per placer that ran there.
struct CellQuality {
  std::string workload;
  std::string topo;
  int nodes = 0;
  std::map<std::string, PlacerResult> placers;
};

/// Every node's GPUs replaced by `spec` (counts kept): a parsed topology
/// contributes the cluster's *shape*; each workload runs against the
/// device spec its single-host twin was calibrated with.
Topology with_device_spec(Topology topo, const gpusim::DeviceSpec& spec) {
  for (cluster::NodeSpec& node : topo.nodes) {
    for (gpusim::DeviceSpec& g : node.gpus) g = spec;
  }
  return topo;
}

/// Exact-equality comparison of a single-host result against the 1-node
/// cluster rerun. Doubles are compared with ==: the cluster runner must
/// submit the identical op sequence, so the schedules are the same maths.
bool check_equal(const std::string& what, const std::string& label_host,
                 const std::string& label_cluster, double sec_host,
                 double sec_cluster, std::uint64_t aux_host,
                 std::uint64_t aux_cluster) {
  if (label_host == label_cluster && sec_host == sec_cluster &&
      aux_host == aux_cluster) {
    return true;
  }
  std::cerr << "[bench] 1-NODE EQUIVALENCE FAILURE (" << what << "):\n"
            << "  single-host: label='" << label_host << "' seconds="
            << std::hexfloat << sec_host << std::defaultfloat
            << " aux=" << aux_host << "\n"
            << "  1-node:      label='" << label_cluster << "' seconds="
            << std::hexfloat << sec_cluster << std::defaultfloat
            << " aux=" << aux_cluster << "\n";
  return false;
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();

  const std::uint64_t input_size =
      args.get_bytes("input-size", 8 * 1000 * 1000);
  auto batch_size_or = args.get_positive_bytes("batch-size", 256 * 1024);
  auto replicas_or = args.get_positive_int("replicas", 19);
  auto batch_or = args.get_positive_int("batch", 32);
  auto gpus_or = args.get_positive_int("gpus", 2);
  auto bw_or = args.get_positive_bytes("bw", 12'500'000'000ULL);
  for (const Status& s : {batch_size_or.status(), replicas_or.status(),
                          batch_or.status(), gpus_or.status(),
                          bw_or.status()}) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  const int replicas = static_cast<int>(replicas_or.value());
  const int gpus = static_cast<int>(gpus_or.value());
  const double link_bw = static_cast<double>(bw_or.value());
  const double link_lat = args.get_double("lat", 2e-6);
  const bool csv = args.get_bool("csv", false);
  const std::string json_path = args.get_string("json", "");
  const std::string trace_path = args.get_string("trace", "");

  // --placement: which placers to run. Unknown values are rejected, like
  // the range-validated numeric flags.
  const std::string placement_flag = args.get_string("placement", "all");
  std::vector<std::string> placer_names;
  if (placement_flag == "all") {
    placer_names = {"round-robin", "greedy", "makespan"};
  } else if (placement_flag == "rr") {
    placer_names = {"round-robin"};
  } else if (placement_flag == "greedy") {
    placer_names = {"greedy"};
  } else if (placement_flag == "makespan") {
    placer_names = {"makespan"};
  } else {
    std::cerr << "invalid argument: --placement='" << placement_flag
              << "' must be one of rr|greedy|makespan|all\n";
    return 1;
  }
  const bool all_placers = placer_names.size() == 3;

  std::vector<int> node_counts;
  if (args.has("nodes")) {
    auto n = args.get_positive_int("nodes", 1);
    if (!n.ok()) {
      std::cerr << n.status().ToString() << "\n";
      return 1;
    }
    node_counts.push_back(static_cast<int>(n.value()));
  } else {
    node_counts = {1, 2, 4, 8};
  }

  // The GPU spec travels with the workload: mandel runs against the
  // calibrated device spec, dedup against the stock Titan XP — each
  // workload's topology must carry the spec its single-host twin uses.
  auto mesh = [&](int n, const gpusim::DeviceSpec& spec) {
    return cluster::full_mesh(n, gpus, spec, link_bw, link_lat);
  };

  // Swept cells: (name, shape). The shape is spec-substituted per
  // workload below.
  struct CellSpec {
    std::string name;
    Topology shape;  // GPU specs are placeholders until substitution
  };
  std::vector<CellSpec> cells;
  if (args.has("topo")) {
    const std::string path = args.get_string("topo", "");
    std::ifstream in(path);
    if (!in) {
      std::cerr << "[bench] cannot read --topo file " << path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto topo_or = cluster::parse_topology(buf.str());
    if (!topo_or.ok()) {
      std::cerr << "[bench] --topo " << path << ": "
                << topo_or.status().ToString() << "\n";
      return 1;
    }
    cells.push_back({path, std::move(topo_or).value()});
  } else {
    for (int n : node_counts) {
      cells.push_back({"mesh-" + std::to_string(n),
                       mesh(n, gpusim::DeviceSpec::TitanXP())});
    }
    if (!args.has("nodes")) {
      for (const char* spec : {kHeteroGpusSpec, kHeteroLinkSpec}) {
        auto topo_or = cluster::parse_topology(spec);
        if (!topo_or.ok()) {
          std::cerr << "[bench] built-in hetero spec rejected: "
                    << topo_or.status().ToString() << "\n";
          return 1;
        }
        cells.push_back({spec == kHeteroGpusSpec ? "hetero-gpus"
                                                 : "hetero-link",
                         std::move(topo_or).value()});
      }
    }
  }

  // ---- Workloads -------------------------------------------------------
  datagen::CorpusSpec corpus;
  corpus.kind = datagen::CorpusKind::kParsecLike;
  corpus.bytes = input_size;
  std::fprintf(stderr, "[bench] generating parsec corpus (%s)...\n",
               format_bytes(input_size).c_str());
  const std::vector<std::uint8_t> input = datagen::generate(corpus);

  dedup::Fig5Config dcfg;
  dcfg.replicas = replicas;
  dcfg.devices = gpus;  // single-host comparison runs; cluster uses the topo
  dcfg.dedup.batch_size = static_cast<std::uint32_t>(batch_size_or.value());
  dcfg.dedup.rabin.mask = 0x7FF;  // ~2 kB blocks, as fig5_dedup_throughput
  const dedup::DedupTrace trace = dedup::build_trace(input, dcfg.dedup);

  kernels::MandelParams params = benchtool::mandel_workload(args);
  mandel::IterationMap map = benchtool::load_map(args, params);
  mandel::ModeledConfig mcfg;
  mcfg.batch_lines = static_cast<int>(batch_or.value());
  mcfg.devices = gpus;
  if (args.get_bool("calibrate", true)) {
    mcfg = mandel::calibrate_to_paper(map, {}, mcfg);
    mcfg.devices = gpus;
  }

  StageGraph dgraph = cluster::dedup_stage_graph(trace, replicas, true);
  StageGraph mgraph = cluster::mandel_stage_graph(
      params.dim, mcfg.batch_lines, mcfg.combined_workers, true);

  // ---- 1-node equivalence: cluster == single-host, bit for bit ---------
  // The SPar+CUDA dedup and combined-CUDA mandel runs also profile the
  // stage graphs (ClusterRunOptions::profile) — measurement is pure
  // observation, so the exact-equality checks double as proof that
  // profiling never perturbs the schedule.
  ClusterRunOptions one_node;
  one_node.topo = mesh(1, dcfg.device_spec);
  ClusterRunOptions one_node_m;
  one_node_m.topo = mesh(1, mcfg.device_spec);
  bool equiv_ok = true;
  {
    for (Fig5Backend b : {Fig5Backend::kSequential, Fig5Backend::kSparCpu,
                          Fig5Backend::kSparCuda, Fig5Backend::kSparOcl}) {
      dedup::Fig5Result host = dedup::run_fig5(trace, dcfg, b);
      ClusterRunOptions opts = one_node;
      if (b == Fig5Backend::kSparCuda) opts.profile = &dgraph;
      ClusterRunResult one = cluster::run_fig5_cluster(trace, dcfg, b, opts);
      equiv_ok &= check_equal(
          "dedup " + host.label, host.label, one.label, host.modeled_seconds,
          one.modeled_seconds, host.kernel_launches, one.kernel_launches);
    }
    {
      dedup::Fig5Config c = dcfg;
      c.mem_spaces = 2;
      dedup::Fig5Result host =
          dedup::run_fig5(trace, c, Fig5Backend::kSparCuda);
      ClusterRunResult one = cluster::run_fig5_cluster(
          trace, c, Fig5Backend::kSparCuda, one_node);
      equiv_ok &= check_equal(
          "dedup " + host.label, host.label, one.label, host.modeled_seconds,
          one.modeled_seconds, host.kernel_launches, one.kernel_launches);
    }

    mandel::RunResult seq = mandel::run_sequential(map, mcfg);
    ClusterRunResult seq1 =
        cluster::run_mandel_sequential_cluster(map, mcfg, one_node_m);
    equiv_ok &= check_equal("mandel sequential", seq.label, seq1.label,
                            seq.modeled_seconds, seq1.modeled_seconds,
                            seq.checksum, seq1.checksum);

    mandel::ModeledConfig c20 = mcfg;
    c20.cpu_workers = 20;
    mandel::RunResult cpu =
        mandel::run_cpu_pipeline(map, c20, mandel::CpuModel::kSpar);
    ClusterRunResult cpu1 =
        cluster::run_mandel_cpu_cluster(map, c20, one_node_m);
    equiv_ok &= check_equal("mandel spar cpu", cpu.label, cpu1.label,
                            cpu.modeled_seconds, cpu1.modeled_seconds,
                            cpu.checksum, cpu1.checksum);

    for (mandel::GpuApi api : {mandel::GpuApi::kCuda, mandel::GpuApi::kOpenCl}) {
      mandel::RunResult comb =
          mandel::run_combined(map, mcfg, mandel::CpuModel::kSpar, api);
      ClusterRunOptions opts = one_node_m;
      if (api == mandel::GpuApi::kCuda) opts.profile = &mgraph;
      ClusterRunResult comb1 =
          cluster::run_mandel_combined_cluster(map, mcfg, api, opts);
      equiv_ok &= check_equal("mandel " + comb.label, comb.label, comb1.label,
                              comb.modeled_seconds, comb1.modeled_seconds,
                              comb.checksum, comb1.checksum);
      equiv_ok &= check_equal("mandel " + comb.label + " kernels", comb.label,
                              comb1.label, comb.modeled_seconds,
                              comb1.modeled_seconds, comb.kernel_launches,
                              comb1.kernel_launches);
    }
  }
  if (!equiv_ok) return 1;
  if (!csv) {
    std::cout << "1-node cluster == single-host model (dedup seq/spar-cpu/"
                 "spar+cuda/spar+opencl/2x-mem, mandel seq/cpu/combined): "
                 "byte-identical.\n\n";
  }

  // ---- Multi-node sweep ------------------------------------------------
  std::vector<JsonRow> rows;
  std::vector<CellQuality> quality;
  bool bytes_pin_ok = true;
  bool time_pin_ok = true;

  Table dtable("Cluster sweep — dedup SPar+CUDA (" +
               format_bytes(input_size) + ", " + std::to_string(replicas) +
               " replicas, " + format_bytes(bw_or.value()) + "/s links)");
  dtable.set_header({"topo", "placement", "predicted cross-bytes",
                     "est makespan", "modeled time", "throughput"});
  Table mtable("Cluster sweep — mandel SPar+CUDA combined (dim=" +
               std::to_string(params.dim) + ", " +
               std::to_string(mcfg.combined_workers) + " workers)");
  mtable.set_header({"topo", "placement", "predicted cross-bytes",
                     "est makespan", "modeled time", "speedup vs 1-node"});

  double mandel_base = 0;
  for (const CellSpec& cell : cells) {
    const int n = static_cast<int>(cell.shape.nodes.size());
    const Topology dtopo = with_device_spec(cell.shape, dcfg.device_spec);
    const Topology mtopo = with_device_spec(cell.shape, mcfg.device_spec);

    const auto sweep = [&](const Topology& topo, const StageGraph& graph,
                           const char* workload, auto&& run_one, Table& table,
                           auto&& row_tail) {
      const cluster::MakespanEstimator est(graph, topo);
      CellQuality q;
      q.workload = workload;
      q.topo = cell.name;
      q.nodes = n;
      for (const std::string& pname : placer_names) {
        Placement placement =
            pname == "round-robin" ? cluster::place_round_robin(graph, topo)
            : pname == "greedy"    ? cluster::place_greedy(graph, topo)
                                   : cluster::place_makespan(graph, topo);
        PlacerResult pr;
        pr.predicted_cross_bytes =
            cluster::predicted_cross_bytes(graph, placement, topo);
        pr.estimated_makespan_s = est.estimate(placement);
        ClusterRunOptions opts;
        opts.topo = topo;
        opts.placement = placement;
        if (!trace_path.empty() && &cell == &cells.back() &&
            std::string(workload) == "dedup-spar+cuda" && pname == "greedy") {
          opts.trace_path = trace_path;
        }
        ClusterRunResult r = run_one(opts);
        pr.modeled_seconds = r.modeled_seconds;
        // Bytes pin, exact: the fabric's non-shard traffic must be what
        // the placement byte estimator predicted.
        if (r.fabric_bytes - r.shard_bytes != pr.predicted_cross_bytes) {
          std::cerr << "[bench] BYTE ESTIMATOR MISMATCH (" << workload
                    << ", " << cell.name << ", " << pname
                    << "): fabric=" << r.fabric_bytes
                    << " shard=" << r.shard_bytes
                    << " predicted=" << pr.predicted_cross_bytes << "\n";
          bytes_pin_ok = false;
        }
        // Time pin, banded: DES within [estimate, estimate * factor].
        if (r.modeled_seconds >
                pr.estimated_makespan_s * cluster::kEstimatorPinFactor ||
            pr.estimated_makespan_s >
                r.modeled_seconds * cluster::kEstimatorLowerSlack) {
          std::cerr << "[bench] TIME ESTIMATOR OUT OF BAND (" << workload
                    << ", " << cell.name << ", " << pname
                    << "): estimate=" << pr.estimated_makespan_s
                    << " des=" << r.modeled_seconds << " band=[est, est*"
                    << cluster::kEstimatorPinFactor << "]\n";
          time_pin_ok = false;
        }
        q.placers[pname] = pr;
        row_tail(table, pname.c_str(), pr, r);
        rows.push_back({workload, cell.name, n, pname,
                        pr.predicted_cross_bytes, r.fabric_bytes,
                        r.shard_bytes, pr.estimated_makespan_s,
                        r.modeled_seconds, r.throughput_mb_s,
                        r.kernel_launches});
      }
      quality.push_back(std::move(q));
    };

    sweep(
        dtopo, dgraph, "dedup-spar+cuda",
        [&](const ClusterRunOptions& opts) {
          return cluster::run_fig5_cluster(trace, dcfg,
                                           Fig5Backend::kSparCuda, opts);
        },
        dtable,
        [&](Table& t, const char* pname, const PlacerResult& pr,
            const ClusterRunResult& r) {
          t.add_row({cell.name, pname,
                     std::to_string(pr.predicted_cross_bytes),
                     format_seconds(pr.estimated_makespan_s),
                     format_seconds(r.modeled_seconds),
                     format_fixed(r.throughput_mb_s, 1) + " MB/s"});
        });

    sweep(
        mtopo, mgraph, "mandel-combined-cuda",
        [&](const ClusterRunOptions& opts) {
          return cluster::run_mandel_combined_cluster(
              map, mcfg, mandel::GpuApi::kCuda, opts);
        },
        mtable,
        [&](Table& t, const char* pname, const PlacerResult& pr,
            const ClusterRunResult& r) {
          if (mandel_base == 0) mandel_base = r.modeled_seconds;
          t.add_row({cell.name, pname,
                     std::to_string(pr.predicted_cross_bytes),
                     format_seconds(pr.estimated_makespan_s),
                     format_seconds(r.modeled_seconds),
                     benchtool::speedup_cell(mandel_base,
                                             r.modeled_seconds)});
        });
    dtable.add_separator();
    mtable.add_separator();
  }

  // ---- Placement-quality gates (only meaningful with all placers) ------
  // place_makespan must win or tie both baselines on estimated AND DES
  // makespan in every cell, and strictly resolve the PR-8 inversion cells
  // (dedup 8-node vs greedy, mandel 2-node vs round-robin) when swept.
  bool makespan_le_baselines = true;
  bool dedup8_beats_greedy = true;
  bool mandel2_beats_rr = true;
  if (all_placers) {
    for (const CellQuality& q : quality) {
      const PlacerResult& rr = q.placers.at("round-robin");
      const PlacerResult& gr = q.placers.at("greedy");
      const PlacerResult& mk = q.placers.at("makespan");
      const double des_min = std::min(rr.modeled_seconds, gr.modeled_seconds);
      const double est_min =
          std::min(rr.estimated_makespan_s, gr.estimated_makespan_s);
      if (mk.modeled_seconds > des_min * cluster::kEstimatorLowerSlack ||
          mk.estimated_makespan_s > est_min * cluster::kEstimatorLowerSlack) {
        std::cerr << "[bench] MAKESPAN PLACER LOSES TO A BASELINE ("
                  << q.workload << ", " << q.topo << "): des mk="
                  << mk.modeled_seconds << " min=" << des_min << ", est mk="
                  << mk.estimated_makespan_s << " min=" << est_min << "\n";
        makespan_le_baselines = false;
      }
      if (q.workload == "dedup-spar+cuda" && q.topo == "mesh-8" &&
          mk.modeled_seconds >= gr.modeled_seconds) {
        std::cerr << "[bench] DEDUP 8-NODE: makespan does not strictly beat "
                     "greedy: mk=" << mk.modeled_seconds
                  << " greedy=" << gr.modeled_seconds << "\n";
        dedup8_beats_greedy = false;
      }
      if (q.workload == "mandel-combined-cuda" && q.topo == "mesh-2" &&
          mk.modeled_seconds >= rr.modeled_seconds) {
        std::cerr << "[bench] MANDEL 2-NODE: makespan does not strictly beat "
                     "round-robin: mk=" << mk.modeled_seconds
                  << " rr=" << rr.modeled_seconds << "\n";
        mandel2_beats_rr = false;
      }
    }
  }

  if (csv) {
    dtable.render_csv(std::cout);
    mtable.render_csv(std::cout);
  } else {
    dtable.render(std::cout);
    std::cout << "\n";
    mtable.render(std::cout);
    std::cout << "\ngreedy minimizes cross-node bytes and collapses farms "
                 "onto few nodes; round-robin spreads them blindly; makespan "
                 "optimizes the measured-occupancy + transfer cost model "
                 "that the DES pin validates. The dup check's shard traffic "
                 "(content-hash routed, digest % nodes) is placement-"
                 "independent and excluded from the byte estimator.\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "[bench] cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"fig_cluster\",\n";
    json << "  \"input_bytes\": " << input_size << ",\n";
    json << "  \"replicas\": " << replicas << ",\n";
    json << "  \"dim\": " << params.dim << ",\n";
    json << "  \"gpus_per_node\": " << gpus << ",\n";
    json << "  \"link_bandwidth_bytes_per_s\": " << link_bw << ",\n";
    json << "  \"link_latency_s\": " << link_lat << ",\n";
    json << "  \"estimator_pin_factor\": " << cluster::kEstimatorPinFactor
         << ",\n";
    json << "  \"one_node_byte_identical\": " << (equiv_ok ? "true" : "false")
         << ",\n";
    json << "  \"bytes_pin_exact\": " << (bytes_pin_ok ? "true" : "false")
         << ",\n";
    json << "  \"time_pin_in_band\": " << (time_pin_ok ? "true" : "false")
         << ",\n";
    json << "  \"placement_gates\": {\n";
    json << "    \"all_placers_swept\": " << (all_placers ? "true" : "false")
         << ",\n";
    json << "    \"makespan_le_baselines_all_cells\": "
         << (makespan_le_baselines ? "true" : "false") << ",\n";
    json << "    \"dedup_8node_makespan_beats_greedy\": "
         << (dedup8_beats_greedy ? "true" : "false") << ",\n";
    json << "    \"mandel_2node_makespan_beats_rr\": "
         << (mandel2_beats_rr ? "true" : "false") << "\n  },\n";
    json << "  \"placement_quality\": [\n";
    for (std::size_t i = 0; i < quality.size(); ++i) {
      const CellQuality& q = quality[i];
      json << "    {\"workload\": \"" << q.workload << "\", \"topo\": \""
           << q.topo << "\", \"nodes\": " << q.nodes << ", \"placers\": {";
      std::size_t k = 0;
      for (const auto& [pname, pr] : q.placers) {
        json << "\"" << pname << "\": {\"predicted_cross_bytes\": "
             << pr.predicted_cross_bytes << ", \"estimated_makespan_s\": "
             << pr.estimated_makespan_s << ", \"modeled_seconds\": "
             << pr.modeled_seconds << "}"
             << (++k < q.placers.size() ? ", " : "");
      }
      json << "}}" << (i + 1 < quality.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const JsonRow& r = rows[i];
      json << "    {\"workload\": \"" << r.workload << "\", \"topo\": \""
           << r.topo << "\", \"nodes\": " << r.nodes << ", \"placement\": \""
           << r.placement
           << "\", \"predicted_cross_bytes\": " << r.predicted_cross_bytes
           << ", \"fabric_bytes\": " << r.fabric_bytes
           << ", \"shard_bytes\": " << r.shard_bytes
           << ", \"estimated_makespan_s\": " << r.estimated_makespan_s
           << ", \"modeled_seconds\": " << r.modeled_seconds
           << ", \"throughput_mb_s\": " << r.throughput_mb_s
           << ", \"kernel_launches\": " << r.kernel_launches << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "[bench] json written to %s\n", json_path.c_str());
  }

  return (bytes_pin_ok && time_pin_ok && makespan_le_baselines &&
          dedup8_beats_greedy && mandel2_beats_rr)
             ? 0
             : 1;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
