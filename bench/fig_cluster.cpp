// Cluster-scale sweep: the Fig. 5 (dedup) and Fig. 1 (mandel) schedules on
// a simulated multi-node full-mesh cluster, comparing naive round-robin
// stage placement against the greedy traffic-aware placer.
//
// On every invocation the bench first proves the 1-node topology byte-
// identical to the single-host modeled runners (same modeled seconds,
// throughput, checksum and kernel-launch counts, compared with exact
// floating-point equality) and exits non-zero on any divergence — the
// cluster layer is a strict superset of the single-host model, not a fork.
// It then sweeps node counts, placing the dedup SPar+CUDA pipeline and the
// mandel SPar+CUDA combined pipeline with both placers, and cross-checks
// the placement cost estimator against the fabric's actual byte counters
// (fabric_bytes - shard_bytes == predicted_cross_bytes, exactly).
//
// Flags: --nodes=N       sweep only N nodes (default sweep: 1, 2, 4, 8)
//        --input-size=BYTES (8 MB) --batch-size=BYTES (256 KiB)
//        --replicas=N    (19) dedup farm replicas
//        --quick | --paper-scale | --dim=N --niter=N  mandel workload
//        --batch=N       (32) mandel lines per kernel call
//        --gpus=N        (2) GPUs per node
//        --bw=BYTES/S    (12.5GB) per-link bandwidth  --lat=S (2us) latency
//        --json=PATH     machine-readable rows (e.g. BENCH_cluster.json)
//        --trace=FILE    Chrome trace of the largest dedup greedy run
//        --csv
#include <array>
#include <cmath>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "cluster/modeled.hpp"
#include "datagen/corpus.hpp"
#include "dedup/modeled.hpp"
#include "mandel/calibrate.hpp"
#include "mandel/modeled.hpp"

namespace hs {
namespace {

using cluster::ClusterRunOptions;
using cluster::ClusterRunResult;
using cluster::Placement;
using cluster::StageGraph;
using cluster::Topology;
using dedup::Fig5Backend;

struct JsonRow {
  std::string workload;
  int nodes = 0;
  std::string placement;
  std::uint64_t predicted_cross_bytes = 0;
  std::uint64_t fabric_bytes = 0;
  std::uint64_t shard_bytes = 0;
  double modeled_seconds = 0;
  double throughput_mb_s = 0;
  std::uint64_t kernel_launches = 0;
};

/// Exact-equality comparison of a single-host result against the 1-node
/// cluster rerun. Doubles are compared with ==: the cluster runner must
/// submit the identical op sequence, so the schedules are the same maths.
bool check_equal(const std::string& what, const std::string& label_host,
                 const std::string& label_cluster, double sec_host,
                 double sec_cluster, std::uint64_t aux_host,
                 std::uint64_t aux_cluster) {
  if (label_host == label_cluster && sec_host == sec_cluster &&
      aux_host == aux_cluster) {
    return true;
  }
  std::cerr << "[bench] 1-NODE EQUIVALENCE FAILURE (" << what << "):\n"
            << "  single-host: label='" << label_host << "' seconds="
            << std::hexfloat << sec_host << std::defaultfloat
            << " aux=" << aux_host << "\n"
            << "  1-node:      label='" << label_cluster << "' seconds="
            << std::hexfloat << sec_cluster << std::defaultfloat
            << " aux=" << aux_cluster << "\n";
  return false;
}

int run(int argc, const char** argv) {
  auto args_or = CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << args_or.status().ToString() << "\n";
    return 1;
  }
  const CliArgs& args = args_or.value();

  const std::uint64_t input_size =
      args.get_bytes("input-size", 8 * 1000 * 1000);
  auto batch_size_or = args.get_positive_bytes("batch-size", 256 * 1024);
  auto replicas_or = args.get_positive_int("replicas", 19);
  auto batch_or = args.get_positive_int("batch", 32);
  auto gpus_or = args.get_positive_int("gpus", 2);
  auto bw_or = args.get_positive_bytes("bw", 12'500'000'000ULL);
  for (const Status& s : {batch_size_or.status(), replicas_or.status(),
                          batch_or.status(), gpus_or.status(),
                          bw_or.status()}) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  const int replicas = static_cast<int>(replicas_or.value());
  const int gpus = static_cast<int>(gpus_or.value());
  const double link_bw = static_cast<double>(bw_or.value());
  const double link_lat = args.get_double("lat", 2e-6);
  const bool csv = args.get_bool("csv", false);
  const std::string json_path = args.get_string("json", "");
  const std::string trace_path = args.get_string("trace", "");

  std::vector<int> node_counts;
  if (args.has("nodes")) {
    auto n = args.get_positive_int("nodes", 1);
    if (!n.ok()) {
      std::cerr << n.status().ToString() << "\n";
      return 1;
    }
    node_counts.push_back(static_cast<int>(n.value()));
  } else {
    node_counts = {1, 2, 4, 8};
  }

  // The GPU spec travels with the workload: mandel runs against the
  // calibrated device spec, dedup against the stock Titan XP — each
  // workload's topology must carry the spec its single-host twin uses.
  auto mesh = [&](int n, const gpusim::DeviceSpec& spec) {
    return cluster::full_mesh(n, gpus, spec, link_bw, link_lat);
  };

  // ---- Workloads -------------------------------------------------------
  datagen::CorpusSpec corpus;
  corpus.kind = datagen::CorpusKind::kParsecLike;
  corpus.bytes = input_size;
  std::fprintf(stderr, "[bench] generating parsec corpus (%s)...\n",
               format_bytes(input_size).c_str());
  const std::vector<std::uint8_t> input = datagen::generate(corpus);

  dedup::Fig5Config dcfg;
  dcfg.replicas = replicas;
  dcfg.devices = gpus;  // single-host comparison runs; cluster uses the topo
  dcfg.dedup.batch_size = static_cast<std::uint32_t>(batch_size_or.value());
  dcfg.dedup.rabin.mask = 0x7FF;  // ~2 kB blocks, as fig5_dedup_throughput
  const dedup::DedupTrace trace = dedup::build_trace(input, dcfg.dedup);

  kernels::MandelParams params = benchtool::mandel_workload(args);
  mandel::IterationMap map = benchtool::load_map(args, params);
  mandel::ModeledConfig mcfg;
  mcfg.batch_lines = static_cast<int>(batch_or.value());
  mcfg.devices = gpus;
  if (args.get_bool("calibrate", true)) {
    mcfg = mandel::calibrate_to_paper(map, {}, mcfg);
    mcfg.devices = gpus;
  }

  // ---- 1-node equivalence: cluster == single-host, bit for bit ---------
  ClusterRunOptions one_node;
  one_node.topo = mesh(1, dcfg.device_spec);
  ClusterRunOptions one_node_m;
  one_node_m.topo = mesh(1, mcfg.device_spec);
  bool equiv_ok = true;
  {
    for (Fig5Backend b : {Fig5Backend::kSequential, Fig5Backend::kSparCpu,
                          Fig5Backend::kSparCuda, Fig5Backend::kSparOcl}) {
      dedup::Fig5Result host = dedup::run_fig5(trace, dcfg, b);
      ClusterRunResult one = cluster::run_fig5_cluster(trace, dcfg, b, one_node);
      equiv_ok &= check_equal(
          "dedup " + host.label, host.label, one.label, host.modeled_seconds,
          one.modeled_seconds, host.kernel_launches, one.kernel_launches);
    }
    {
      dedup::Fig5Config c = dcfg;
      c.mem_spaces = 2;
      dedup::Fig5Result host =
          dedup::run_fig5(trace, c, Fig5Backend::kSparCuda);
      ClusterRunResult one = cluster::run_fig5_cluster(
          trace, c, Fig5Backend::kSparCuda, one_node);
      equiv_ok &= check_equal(
          "dedup " + host.label, host.label, one.label, host.modeled_seconds,
          one.modeled_seconds, host.kernel_launches, one.kernel_launches);
    }

    mandel::RunResult seq = mandel::run_sequential(map, mcfg);
    ClusterRunResult seq1 =
        cluster::run_mandel_sequential_cluster(map, mcfg, one_node_m);
    equiv_ok &= check_equal("mandel sequential", seq.label, seq1.label,
                            seq.modeled_seconds, seq1.modeled_seconds,
                            seq.checksum, seq1.checksum);

    mandel::ModeledConfig c20 = mcfg;
    c20.cpu_workers = 20;
    mandel::RunResult cpu =
        mandel::run_cpu_pipeline(map, c20, mandel::CpuModel::kSpar);
    ClusterRunResult cpu1 =
        cluster::run_mandel_cpu_cluster(map, c20, one_node_m);
    equiv_ok &= check_equal("mandel spar cpu", cpu.label, cpu1.label,
                            cpu.modeled_seconds, cpu1.modeled_seconds,
                            cpu.checksum, cpu1.checksum);

    for (mandel::GpuApi api : {mandel::GpuApi::kCuda, mandel::GpuApi::kOpenCl}) {
      mandel::RunResult comb =
          mandel::run_combined(map, mcfg, mandel::CpuModel::kSpar, api);
      ClusterRunResult comb1 =
          cluster::run_mandel_combined_cluster(map, mcfg, api, one_node_m);
      equiv_ok &= check_equal("mandel " + comb.label, comb.label, comb1.label,
                              comb.modeled_seconds, comb1.modeled_seconds,
                              comb.checksum, comb1.checksum);
      equiv_ok &= check_equal("mandel " + comb.label + " kernels", comb.label,
                              comb1.label, comb.modeled_seconds,
                              comb1.modeled_seconds, comb.kernel_launches,
                              comb1.kernel_launches);
    }
  }
  if (!equiv_ok) return 1;
  if (!csv) {
    std::cout << "1-node cluster == single-host model (dedup seq/spar-cpu/"
                 "spar+cuda/spar+opencl/2x-mem, mandel seq/cpu/combined): "
                 "byte-identical.\n\n";
  }

  // ---- Multi-node sweep ------------------------------------------------
  std::vector<JsonRow> rows;
  bool estimator_ok = true;
  bool greedy_beats_rr_4node = true;

  Table dtable("Cluster sweep — dedup SPar+CUDA (" +
               format_bytes(input_size) + ", " + std::to_string(replicas) +
               " replicas, full mesh, " + format_bytes(bw_or.value()) +
               "/s links)");
  dtable.set_header({"nodes", "placement", "predicted cross-bytes",
                     "fabric bytes", "modeled time", "throughput"});
  Table mtable("Cluster sweep — mandel SPar+CUDA combined (dim=" +
               std::to_string(params.dim) + ", " +
               std::to_string(mcfg.combined_workers) + " workers)");
  mtable.set_header({"nodes", "placement", "predicted cross-bytes",
                     "fabric bytes", "modeled time", "speedup vs 1-node"});

  const StageGraph dgraph = cluster::dedup_stage_graph(trace, replicas, true);
  const StageGraph mgraph = cluster::mandel_stage_graph(
      params.dim, mcfg.batch_lines, mcfg.combined_workers, true);

  double mandel_base = 0;
  for (int n : node_counts) {
    const Topology dtopo = mesh(n, dcfg.device_spec);
    const Topology mtopo = mesh(n, mcfg.device_spec);
    struct Placer {
      const char* name;
      Placement placement;
    };
    const auto sweep = [&](const Topology& topo, const StageGraph& graph,
                           const char* workload, auto&& run_one, Table& table,
                           auto&& row_tail) {
      Placer placers[2] = {
          {"round-robin", cluster::place_round_robin(graph, topo)},
          {"greedy", cluster::place_greedy(graph, topo)},
      };
      std::array<std::uint64_t, 2> predicted = {0, 0};
      for (int p = 0; p < 2; ++p) {
        predicted[p] =
            cluster::predicted_cross_bytes(graph, placers[p].placement, topo);
        ClusterRunOptions opts;
        opts.topo = topo;
        opts.placement = placers[p].placement;
        if (!trace_path.empty() && n == node_counts.back() &&
            std::string(workload) == "dedup-spar+cuda" &&
            std::string(placers[p].name) == "greedy") {
          opts.trace_path = trace_path;
        }
        ClusterRunResult r = run_one(opts);
        // Estimator pin: the fabric's non-shard traffic must be exactly
        // what the placement estimator predicted.
        if (r.fabric_bytes - r.shard_bytes != predicted[p]) {
          std::cerr << "[bench] ESTIMATOR MISMATCH (" << workload << ", "
                    << n << " nodes, " << placers[p].name
                    << "): fabric=" << r.fabric_bytes
                    << " shard=" << r.shard_bytes
                    << " predicted=" << predicted[p] << "\n";
          estimator_ok = false;
        }
        row_tail(table, placers[p].name, predicted[p], r);
        rows.push_back({workload, n, placers[p].name, predicted[p],
                        r.fabric_bytes, r.shard_bytes, r.modeled_seconds,
                        r.throughput_mb_s, r.kernel_launches});
      }
      return predicted;
    };

    auto dpred = sweep(
        dtopo, dgraph, "dedup-spar+cuda",
        [&](const ClusterRunOptions& opts) {
          return cluster::run_fig5_cluster(trace, dcfg,
                                           Fig5Backend::kSparCuda, opts);
        },
        dtable,
        [&](Table& t, const char* pname, std::uint64_t pred,
            const ClusterRunResult& r) {
          t.add_row({std::to_string(n), pname, std::to_string(pred),
                     std::to_string(r.fabric_bytes),
                     format_seconds(r.modeled_seconds),
                     format_fixed(r.throughput_mb_s, 1) + " MB/s"});
        });
    if (n == 4 && dpred[1] >= dpred[0]) {
      std::cerr << "[bench] GREEDY DOES NOT BEAT ROUND-ROBIN at 4 nodes: "
                << "greedy=" << dpred[1] << " rr=" << dpred[0] << "\n";
      greedy_beats_rr_4node = false;
    }

    sweep(
        mtopo, mgraph, "mandel-combined-cuda",
        [&](const ClusterRunOptions& opts) {
          return cluster::run_mandel_combined_cluster(
              map, mcfg, mandel::GpuApi::kCuda, opts);
        },
        mtable,
        [&](Table& t, const char* pname, std::uint64_t pred,
            const ClusterRunResult& r) {
          if (mandel_base == 0) mandel_base = r.modeled_seconds;
          t.add_row({std::to_string(n), pname, std::to_string(pred),
                     std::to_string(r.fabric_bytes),
                     format_seconds(r.modeled_seconds),
                     benchtool::speedup_cell(mandel_base,
                                             r.modeled_seconds)});
        });
    dtable.add_separator();
    mtable.add_separator();
  }

  if (csv) {
    dtable.render_csv(std::cout);
    mtable.render_csv(std::cout);
  } else {
    dtable.render(std::cout);
    std::cout << "\n";
    mtable.render(std::cout);
    std::cout << "\ngreedy placement co-locates the heavy source->worker and "
                 "worker->writer edges; round-robin scatters them. The dup "
                 "check's shard traffic (content-hash routed, digest % nodes) "
                 "is placement-independent and excluded from the estimator "
                 "columns.\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "[bench] cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"fig_cluster\",\n";
    json << "  \"input_bytes\": " << input_size << ",\n";
    json << "  \"replicas\": " << replicas << ",\n";
    json << "  \"dim\": " << params.dim << ",\n";
    json << "  \"gpus_per_node\": " << gpus << ",\n";
    json << "  \"link_bandwidth_bytes_per_s\": " << link_bw << ",\n";
    json << "  \"link_latency_s\": " << link_lat << ",\n";
    json << "  \"one_node_byte_identical\": " << (equiv_ok ? "true" : "false")
         << ",\n";
    json << "  \"greedy_beats_rr_dedup_4node\": "
         << (greedy_beats_rr_4node ? "true" : "false") << ",\n";
    json << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const JsonRow& r = rows[i];
      json << "    {\"workload\": \"" << r.workload << "\", \"nodes\": "
           << r.nodes << ", \"placement\": \"" << r.placement
           << "\", \"predicted_cross_bytes\": " << r.predicted_cross_bytes
           << ", \"fabric_bytes\": " << r.fabric_bytes
           << ", \"shard_bytes\": " << r.shard_bytes
           << ", \"modeled_seconds\": " << r.modeled_seconds
           << ", \"throughput_mb_s\": " << r.throughput_mb_s
           << ", \"kernel_launches\": " << r.kernel_launches << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "[bench] json written to %s\n", json_path.c_str());
  }

  return (estimator_ok && greedy_beats_rr_4node) ? 0 : 1;
}

}  // namespace
}  // namespace hs

int main(int argc, const char** argv) { return hs::run(argc, argv); }
