# Empty dependencies file for hs_datagen.
# This may be replaced when dependencies are built.
