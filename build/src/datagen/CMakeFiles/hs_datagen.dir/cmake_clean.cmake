file(REMOVE_RECURSE
  "CMakeFiles/hs_datagen.dir/corpus.cpp.o"
  "CMakeFiles/hs_datagen.dir/corpus.cpp.o.d"
  "libhs_datagen.a"
  "libhs_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
