file(REMOVE_RECURSE
  "libhs_datagen.a"
)
