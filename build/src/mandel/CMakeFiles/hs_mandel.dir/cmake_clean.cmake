file(REMOVE_RECURSE
  "CMakeFiles/hs_mandel.dir/calibrate.cpp.o"
  "CMakeFiles/hs_mandel.dir/calibrate.cpp.o.d"
  "CMakeFiles/hs_mandel.dir/iteration_map.cpp.o"
  "CMakeFiles/hs_mandel.dir/iteration_map.cpp.o.d"
  "CMakeFiles/hs_mandel.dir/modeled.cpp.o"
  "CMakeFiles/hs_mandel.dir/modeled.cpp.o.d"
  "CMakeFiles/hs_mandel.dir/pipelines.cpp.o"
  "CMakeFiles/hs_mandel.dir/pipelines.cpp.o.d"
  "libhs_mandel.a"
  "libhs_mandel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_mandel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
