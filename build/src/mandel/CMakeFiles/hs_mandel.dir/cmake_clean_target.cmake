file(REMOVE_RECURSE
  "libhs_mandel.a"
)
