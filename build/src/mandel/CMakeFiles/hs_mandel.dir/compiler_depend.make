# Empty compiler generated dependencies file for hs_mandel.
# This may be replaced when dependencies are built.
