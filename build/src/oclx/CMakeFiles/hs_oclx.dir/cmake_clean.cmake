file(REMOVE_RECURSE
  "CMakeFiles/hs_oclx.dir/cl_api.cpp.o"
  "CMakeFiles/hs_oclx.dir/cl_api.cpp.o.d"
  "CMakeFiles/hs_oclx.dir/oclx.cpp.o"
  "CMakeFiles/hs_oclx.dir/oclx.cpp.o.d"
  "libhs_oclx.a"
  "libhs_oclx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_oclx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
