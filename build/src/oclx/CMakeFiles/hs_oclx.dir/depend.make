# Empty dependencies file for hs_oclx.
# This may be replaced when dependencies are built.
