file(REMOVE_RECURSE
  "libhs_oclx.a"
)
