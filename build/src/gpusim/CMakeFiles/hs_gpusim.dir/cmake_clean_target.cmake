file(REMOVE_RECURSE
  "libhs_gpusim.a"
)
