file(REMOVE_RECURSE
  "CMakeFiles/hs_gpusim.dir/cost_model.cpp.o"
  "CMakeFiles/hs_gpusim.dir/cost_model.cpp.o.d"
  "CMakeFiles/hs_gpusim.dir/device.cpp.o"
  "CMakeFiles/hs_gpusim.dir/device.cpp.o.d"
  "libhs_gpusim.a"
  "libhs_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
