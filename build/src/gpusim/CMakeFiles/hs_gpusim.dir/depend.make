# Empty dependencies file for hs_gpusim.
# This may be replaced when dependencies are built.
