file(REMOVE_RECURSE
  "libhs_taskx.a"
)
