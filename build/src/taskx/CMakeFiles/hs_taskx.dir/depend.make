# Empty dependencies file for hs_taskx.
# This may be replaced when dependencies are built.
