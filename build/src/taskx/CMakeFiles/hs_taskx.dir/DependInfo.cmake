
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskx/pipeline.cpp" "src/taskx/CMakeFiles/hs_taskx.dir/pipeline.cpp.o" "gcc" "src/taskx/CMakeFiles/hs_taskx.dir/pipeline.cpp.o.d"
  "/root/repo/src/taskx/pool.cpp" "src/taskx/CMakeFiles/hs_taskx.dir/pool.cpp.o" "gcc" "src/taskx/CMakeFiles/hs_taskx.dir/pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/hs_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
