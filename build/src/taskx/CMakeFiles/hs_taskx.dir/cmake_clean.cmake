file(REMOVE_RECURSE
  "CMakeFiles/hs_taskx.dir/pipeline.cpp.o"
  "CMakeFiles/hs_taskx.dir/pipeline.cpp.o.d"
  "CMakeFiles/hs_taskx.dir/pool.cpp.o"
  "CMakeFiles/hs_taskx.dir/pool.cpp.o.d"
  "libhs_taskx.a"
  "libhs_taskx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_taskx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
