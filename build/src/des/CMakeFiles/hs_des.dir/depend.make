# Empty dependencies file for hs_des.
# This may be replaced when dependencies are built.
