file(REMOVE_RECURSE
  "CMakeFiles/hs_des.dir/timeline.cpp.o"
  "CMakeFiles/hs_des.dir/timeline.cpp.o.d"
  "CMakeFiles/hs_des.dir/trace_export.cpp.o"
  "CMakeFiles/hs_des.dir/trace_export.cpp.o.d"
  "libhs_des.a"
  "libhs_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
