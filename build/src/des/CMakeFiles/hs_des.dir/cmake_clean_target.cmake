file(REMOVE_RECURSE
  "libhs_des.a"
)
