file(REMOVE_RECURSE
  "CMakeFiles/hs_cudax.dir/cudax.cpp.o"
  "CMakeFiles/hs_cudax.dir/cudax.cpp.o.d"
  "libhs_cudax.a"
  "libhs_cudax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_cudax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
