# Empty dependencies file for hs_cudax.
# This may be replaced when dependencies are built.
