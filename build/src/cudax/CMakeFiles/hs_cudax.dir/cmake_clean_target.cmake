file(REMOVE_RECURSE
  "libhs_cudax.a"
)
