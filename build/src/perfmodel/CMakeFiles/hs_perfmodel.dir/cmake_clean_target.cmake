file(REMOVE_RECURSE
  "libhs_perfmodel.a"
)
