file(REMOVE_RECURSE
  "CMakeFiles/hs_perfmodel.dir/host_model.cpp.o"
  "CMakeFiles/hs_perfmodel.dir/host_model.cpp.o.d"
  "libhs_perfmodel.a"
  "libhs_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
