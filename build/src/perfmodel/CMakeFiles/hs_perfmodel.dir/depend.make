# Empty dependencies file for hs_perfmodel.
# This may be replaced when dependencies are built.
