file(REMOVE_RECURSE
  "CMakeFiles/hs_common.dir/cli.cpp.o"
  "CMakeFiles/hs_common.dir/cli.cpp.o.d"
  "CMakeFiles/hs_common.dir/format.cpp.o"
  "CMakeFiles/hs_common.dir/format.cpp.o.d"
  "CMakeFiles/hs_common.dir/status.cpp.o"
  "CMakeFiles/hs_common.dir/status.cpp.o.d"
  "CMakeFiles/hs_common.dir/table.cpp.o"
  "CMakeFiles/hs_common.dir/table.cpp.o.d"
  "libhs_common.a"
  "libhs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
