# Empty compiler generated dependencies file for hs_common.
# This may be replaced when dependencies are built.
