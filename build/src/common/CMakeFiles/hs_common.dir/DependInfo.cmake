
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "src/common/CMakeFiles/hs_common.dir/cli.cpp.o" "gcc" "src/common/CMakeFiles/hs_common.dir/cli.cpp.o.d"
  "/root/repo/src/common/format.cpp" "src/common/CMakeFiles/hs_common.dir/format.cpp.o" "gcc" "src/common/CMakeFiles/hs_common.dir/format.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/hs_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/hs_common.dir/status.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/common/CMakeFiles/hs_common.dir/table.cpp.o" "gcc" "src/common/CMakeFiles/hs_common.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
