file(REMOVE_RECURSE
  "libhs_common.a"
)
