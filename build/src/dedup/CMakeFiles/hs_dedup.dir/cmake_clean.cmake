file(REMOVE_RECURSE
  "CMakeFiles/hs_dedup.dir/container.cpp.o"
  "CMakeFiles/hs_dedup.dir/container.cpp.o.d"
  "CMakeFiles/hs_dedup.dir/modeled.cpp.o"
  "CMakeFiles/hs_dedup.dir/modeled.cpp.o.d"
  "CMakeFiles/hs_dedup.dir/pipelines.cpp.o"
  "CMakeFiles/hs_dedup.dir/pipelines.cpp.o.d"
  "CMakeFiles/hs_dedup.dir/stages.cpp.o"
  "CMakeFiles/hs_dedup.dir/stages.cpp.o.d"
  "libhs_dedup.a"
  "libhs_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
