file(REMOVE_RECURSE
  "libhs_dedup.a"
)
