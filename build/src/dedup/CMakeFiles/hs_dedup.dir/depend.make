# Empty dependencies file for hs_dedup.
# This may be replaced when dependencies are built.
