file(REMOVE_RECURSE
  "libhs_spar.a"
)
