# Empty dependencies file for hs_spar.
# This may be replaced when dependencies are built.
