file(REMOVE_RECURSE
  "CMakeFiles/hs_spar.dir/spar.cpp.o"
  "CMakeFiles/hs_spar.dir/spar.cpp.o.d"
  "libhs_spar.a"
  "libhs_spar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_spar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
