file(REMOVE_RECURSE
  "CMakeFiles/hs_flow.dir/pipeline.cpp.o"
  "CMakeFiles/hs_flow.dir/pipeline.cpp.o.d"
  "libhs_flow.a"
  "libhs_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
