file(REMOVE_RECURSE
  "libhs_flow.a"
)
