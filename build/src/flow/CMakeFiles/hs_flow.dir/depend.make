# Empty dependencies file for hs_flow.
# This may be replaced when dependencies are built.
