file(REMOVE_RECURSE
  "CMakeFiles/hs_lzssapp.dir/lzss_stream.cpp.o"
  "CMakeFiles/hs_lzssapp.dir/lzss_stream.cpp.o.d"
  "libhs_lzssapp.a"
  "libhs_lzssapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_lzssapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
