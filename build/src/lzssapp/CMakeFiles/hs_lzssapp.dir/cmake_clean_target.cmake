file(REMOVE_RECURSE
  "libhs_lzssapp.a"
)
