# Empty dependencies file for hs_lzssapp.
# This may be replaced when dependencies are built.
