# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("des")
subdirs("gpusim")
subdirs("cudax")
subdirs("oclx")
subdirs("flow")
subdirs("taskx")
subdirs("spar")
subdirs("kernels")
subdirs("datagen")
subdirs("perfmodel")
subdirs("mandel")
subdirs("dedup")
subdirs("lzssapp")
