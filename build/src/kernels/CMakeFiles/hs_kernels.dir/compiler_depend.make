# Empty compiler generated dependencies file for hs_kernels.
# This may be replaced when dependencies are built.
