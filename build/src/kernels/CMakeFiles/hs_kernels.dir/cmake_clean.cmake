file(REMOVE_RECURSE
  "CMakeFiles/hs_kernels.dir/huffman.cpp.o"
  "CMakeFiles/hs_kernels.dir/huffman.cpp.o.d"
  "CMakeFiles/hs_kernels.dir/lzss.cpp.o"
  "CMakeFiles/hs_kernels.dir/lzss.cpp.o.d"
  "CMakeFiles/hs_kernels.dir/rabin.cpp.o"
  "CMakeFiles/hs_kernels.dir/rabin.cpp.o.d"
  "CMakeFiles/hs_kernels.dir/sha1.cpp.o"
  "CMakeFiles/hs_kernels.dir/sha1.cpp.o.d"
  "CMakeFiles/hs_kernels.dir/sha256.cpp.o"
  "CMakeFiles/hs_kernels.dir/sha256.cpp.o.d"
  "libhs_kernels.a"
  "libhs_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hs_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
