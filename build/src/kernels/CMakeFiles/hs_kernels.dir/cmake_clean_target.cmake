file(REMOVE_RECURSE
  "libhs_kernels.a"
)
