
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/huffman.cpp" "src/kernels/CMakeFiles/hs_kernels.dir/huffman.cpp.o" "gcc" "src/kernels/CMakeFiles/hs_kernels.dir/huffman.cpp.o.d"
  "/root/repo/src/kernels/lzss.cpp" "src/kernels/CMakeFiles/hs_kernels.dir/lzss.cpp.o" "gcc" "src/kernels/CMakeFiles/hs_kernels.dir/lzss.cpp.o.d"
  "/root/repo/src/kernels/rabin.cpp" "src/kernels/CMakeFiles/hs_kernels.dir/rabin.cpp.o" "gcc" "src/kernels/CMakeFiles/hs_kernels.dir/rabin.cpp.o.d"
  "/root/repo/src/kernels/sha1.cpp" "src/kernels/CMakeFiles/hs_kernels.dir/sha1.cpp.o" "gcc" "src/kernels/CMakeFiles/hs_kernels.dir/sha1.cpp.o.d"
  "/root/repo/src/kernels/sha256.cpp" "src/kernels/CMakeFiles/hs_kernels.dir/sha256.cpp.o" "gcc" "src/kernels/CMakeFiles/hs_kernels.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
