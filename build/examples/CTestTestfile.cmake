# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--items=50" "--workers=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mandelbrot "/root/repo/build/examples/mandelbrot_stream" "--dim=64" "--niter=200" "--runtime=spar-cuda" "--out=example_mandel.pgm")
set_tests_properties(example_mandelbrot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dedup "/root/repo/build/examples/dedup_file" "demo" "--input-size=200kb")
set_tests_properties(example_dedup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simgpu "/root/repo/build/examples/simgpu_tour")
set_tests_properties(example_simgpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lzss "/root/repo/build/examples/lzss_stream" "demo" "--input-size=200kb")
set_tests_properties(example_lzss PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spar_gpu "/root/repo/build/examples/spar_gpu_offload" "--batches=4" "--batch-size=512")
set_tests_properties(example_spar_gpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor "/root/repo/build/examples/sensor_analytics" "--events=20000")
set_tests_properties(example_sensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_corpus "/root/repo/build/examples/make_corpus" "parsec" "example_corpus.bin" "--size=256kb")
set_tests_properties(example_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
