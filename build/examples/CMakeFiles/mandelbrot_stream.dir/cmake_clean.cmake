file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot_stream.dir/mandelbrot_stream.cpp.o"
  "CMakeFiles/mandelbrot_stream.dir/mandelbrot_stream.cpp.o.d"
  "mandelbrot_stream"
  "mandelbrot_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
