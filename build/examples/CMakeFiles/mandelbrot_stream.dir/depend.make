# Empty dependencies file for mandelbrot_stream.
# This may be replaced when dependencies are built.
