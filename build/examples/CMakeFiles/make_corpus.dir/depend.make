# Empty dependencies file for make_corpus.
# This may be replaced when dependencies are built.
