file(REMOVE_RECURSE
  "CMakeFiles/make_corpus.dir/make_corpus.cpp.o"
  "CMakeFiles/make_corpus.dir/make_corpus.cpp.o.d"
  "make_corpus"
  "make_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
