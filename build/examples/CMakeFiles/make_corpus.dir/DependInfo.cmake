
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/make_corpus.cpp" "examples/CMakeFiles/make_corpus.dir/make_corpus.cpp.o" "gcc" "examples/CMakeFiles/make_corpus.dir/make_corpus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/hs_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/hs_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
