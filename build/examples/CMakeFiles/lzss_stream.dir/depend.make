# Empty dependencies file for lzss_stream.
# This may be replaced when dependencies are built.
