file(REMOVE_RECURSE
  "CMakeFiles/lzss_stream.dir/lzss_stream.cpp.o"
  "CMakeFiles/lzss_stream.dir/lzss_stream.cpp.o.d"
  "lzss_stream"
  "lzss_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
