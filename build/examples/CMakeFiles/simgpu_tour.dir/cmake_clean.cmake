file(REMOVE_RECURSE
  "CMakeFiles/simgpu_tour.dir/simgpu_tour.cpp.o"
  "CMakeFiles/simgpu_tour.dir/simgpu_tour.cpp.o.d"
  "simgpu_tour"
  "simgpu_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgpu_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
