# Empty dependencies file for simgpu_tour.
# This may be replaced when dependencies are built.
