file(REMOVE_RECURSE
  "CMakeFiles/dedup_file.dir/dedup_file.cpp.o"
  "CMakeFiles/dedup_file.dir/dedup_file.cpp.o.d"
  "dedup_file"
  "dedup_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
