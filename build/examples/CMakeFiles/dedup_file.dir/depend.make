# Empty dependencies file for dedup_file.
# This may be replaced when dependencies are built.
