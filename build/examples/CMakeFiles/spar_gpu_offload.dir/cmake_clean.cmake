file(REMOVE_RECURSE
  "CMakeFiles/spar_gpu_offload.dir/spar_gpu_offload.cpp.o"
  "CMakeFiles/spar_gpu_offload.dir/spar_gpu_offload.cpp.o.d"
  "spar_gpu_offload"
  "spar_gpu_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spar_gpu_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
