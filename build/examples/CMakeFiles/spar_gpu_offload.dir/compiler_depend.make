# Empty compiler generated dependencies file for spar_gpu_offload.
# This may be replaced when dependencies are built.
