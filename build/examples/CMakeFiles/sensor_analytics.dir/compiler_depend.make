# Empty compiler generated dependencies file for sensor_analytics.
# This may be replaced when dependencies are built.
