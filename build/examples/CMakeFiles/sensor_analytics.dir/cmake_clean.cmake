file(REMOVE_RECURSE
  "CMakeFiles/sensor_analytics.dir/sensor_analytics.cpp.o"
  "CMakeFiles/sensor_analytics.dir/sensor_analytics.cpp.o.d"
  "sensor_analytics"
  "sensor_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
