# Empty compiler generated dependencies file for fig1_mandel_ladder.
# This may be replaced when dependencies are built.
