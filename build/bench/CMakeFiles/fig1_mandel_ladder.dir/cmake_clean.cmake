file(REMOVE_RECURSE
  "CMakeFiles/fig1_mandel_ladder.dir/fig1_mandel_ladder.cpp.o"
  "CMakeFiles/fig1_mandel_ladder.dir/fig1_mandel_ladder.cpp.o.d"
  "fig1_mandel_ladder"
  "fig1_mandel_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mandel_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
