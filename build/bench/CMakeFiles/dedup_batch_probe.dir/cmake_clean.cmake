file(REMOVE_RECURSE
  "CMakeFiles/dedup_batch_probe.dir/dedup_batch_probe.cpp.o"
  "CMakeFiles/dedup_batch_probe.dir/dedup_batch_probe.cpp.o.d"
  "dedup_batch_probe"
  "dedup_batch_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_batch_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
