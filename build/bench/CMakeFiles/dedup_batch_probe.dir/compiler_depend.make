# Empty compiler generated dependencies file for dedup_batch_probe.
# This may be replaced when dependencies are built.
