# Empty dependencies file for fig5_dedup_throughput.
# This may be replaced when dependencies are built.
