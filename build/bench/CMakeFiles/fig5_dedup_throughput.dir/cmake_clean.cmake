file(REMOVE_RECURSE
  "CMakeFiles/fig5_dedup_throughput.dir/fig5_dedup_throughput.cpp.o"
  "CMakeFiles/fig5_dedup_throughput.dir/fig5_dedup_throughput.cpp.o.d"
  "fig5_dedup_throughput"
  "fig5_dedup_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dedup_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
