# Empty dependencies file for occupancy_probe.
# This may be replaced when dependencies are built.
