file(REMOVE_RECURSE
  "CMakeFiles/occupancy_probe.dir/occupancy_probe.cpp.o"
  "CMakeFiles/occupancy_probe.dir/occupancy_probe.cpp.o.d"
  "occupancy_probe"
  "occupancy_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occupancy_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
