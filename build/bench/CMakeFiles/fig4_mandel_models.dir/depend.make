# Empty dependencies file for fig4_mandel_models.
# This may be replaced when dependencies are built.
