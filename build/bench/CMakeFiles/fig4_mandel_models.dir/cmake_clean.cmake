file(REMOVE_RECURSE
  "CMakeFiles/fig4_mandel_models.dir/fig4_mandel_models.cpp.o"
  "CMakeFiles/fig4_mandel_models.dir/fig4_mandel_models.cpp.o.d"
  "fig4_mandel_models"
  "fig4_mandel_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mandel_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
