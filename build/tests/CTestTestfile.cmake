# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/taskx_test[1]_include.cmake")
include("/root/repo/build/tests/spar_test[1]_include.cmake")
include("/root/repo/build/tests/cudax_test[1]_include.cmake")
include("/root/repo/build/tests/oclx_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/mandel_test[1]_include.cmake")
include("/root/repo/build/tests/dedup_test[1]_include.cmake")
include("/root/repo/build/tests/spar_gpu_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/huffman_test[1]_include.cmake")
include("/root/repo/build/tests/lzssapp_test[1]_include.cmake")
include("/root/repo/build/tests/cl_api_test[1]_include.cmake")
