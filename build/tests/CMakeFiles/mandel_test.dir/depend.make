# Empty dependencies file for mandel_test.
# This may be replaced when dependencies are built.
