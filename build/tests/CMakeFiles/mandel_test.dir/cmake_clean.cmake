file(REMOVE_RECURSE
  "CMakeFiles/mandel_test.dir/mandel_test.cpp.o"
  "CMakeFiles/mandel_test.dir/mandel_test.cpp.o.d"
  "mandel_test"
  "mandel_test.pdb"
  "mandel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
