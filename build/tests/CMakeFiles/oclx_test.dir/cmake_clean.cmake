file(REMOVE_RECURSE
  "CMakeFiles/oclx_test.dir/oclx_test.cpp.o"
  "CMakeFiles/oclx_test.dir/oclx_test.cpp.o.d"
  "oclx_test"
  "oclx_test.pdb"
  "oclx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oclx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
