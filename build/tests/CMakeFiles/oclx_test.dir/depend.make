# Empty dependencies file for oclx_test.
# This may be replaced when dependencies are built.
