# Empty dependencies file for cudax_test.
# This may be replaced when dependencies are built.
