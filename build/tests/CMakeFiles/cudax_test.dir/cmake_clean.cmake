file(REMOVE_RECURSE
  "CMakeFiles/cudax_test.dir/cudax_test.cpp.o"
  "CMakeFiles/cudax_test.dir/cudax_test.cpp.o.d"
  "cudax_test"
  "cudax_test.pdb"
  "cudax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cudax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
