# Empty dependencies file for huffman_test.
# This may be replaced when dependencies are built.
