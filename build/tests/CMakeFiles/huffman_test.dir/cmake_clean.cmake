file(REMOVE_RECURSE
  "CMakeFiles/huffman_test.dir/huffman_test.cpp.o"
  "CMakeFiles/huffman_test.dir/huffman_test.cpp.o.d"
  "huffman_test"
  "huffman_test.pdb"
  "huffman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huffman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
