file(REMOVE_RECURSE
  "CMakeFiles/taskx_test.dir/taskx_test.cpp.o"
  "CMakeFiles/taskx_test.dir/taskx_test.cpp.o.d"
  "taskx_test"
  "taskx_test.pdb"
  "taskx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
