# Empty dependencies file for taskx_test.
# This may be replaced when dependencies are built.
