file(REMOVE_RECURSE
  "CMakeFiles/spar_test.dir/spar_test.cpp.o"
  "CMakeFiles/spar_test.dir/spar_test.cpp.o.d"
  "spar_test"
  "spar_test.pdb"
  "spar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
