# Empty dependencies file for spar_test.
# This may be replaced when dependencies are built.
