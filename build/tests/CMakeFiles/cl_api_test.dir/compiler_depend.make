# Empty compiler generated dependencies file for cl_api_test.
# This may be replaced when dependencies are built.
