file(REMOVE_RECURSE
  "CMakeFiles/cl_api_test.dir/cl_api_test.cpp.o"
  "CMakeFiles/cl_api_test.dir/cl_api_test.cpp.o.d"
  "cl_api_test"
  "cl_api_test.pdb"
  "cl_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
