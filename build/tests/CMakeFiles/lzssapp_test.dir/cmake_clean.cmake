file(REMOVE_RECURSE
  "CMakeFiles/lzssapp_test.dir/lzssapp_test.cpp.o"
  "CMakeFiles/lzssapp_test.dir/lzssapp_test.cpp.o.d"
  "lzssapp_test"
  "lzssapp_test.pdb"
  "lzssapp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzssapp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
