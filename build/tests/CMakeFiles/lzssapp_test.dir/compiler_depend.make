# Empty compiler generated dependencies file for lzssapp_test.
# This may be replaced when dependencies are built.
