# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for spar_gpu_test.
