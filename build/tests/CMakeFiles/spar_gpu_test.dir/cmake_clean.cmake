file(REMOVE_RECURSE
  "CMakeFiles/spar_gpu_test.dir/spar_gpu_test.cpp.o"
  "CMakeFiles/spar_gpu_test.dir/spar_gpu_test.cpp.o.d"
  "spar_gpu_test"
  "spar_gpu_test.pdb"
  "spar_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spar_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
