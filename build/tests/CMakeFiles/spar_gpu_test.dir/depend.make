# Empty dependencies file for spar_gpu_test.
# This may be replaced when dependencies are built.
