# Empty dependencies file for flow_test.
# This may be replaced when dependencies are built.
