# Empty dependencies file for perfmodel_test.
# This may be replaced when dependencies are built.
