file(REMOVE_RECURSE
  "CMakeFiles/perfmodel_test.dir/perfmodel_test.cpp.o"
  "CMakeFiles/perfmodel_test.dir/perfmodel_test.cpp.o.d"
  "perfmodel_test"
  "perfmodel_test.pdb"
  "perfmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
