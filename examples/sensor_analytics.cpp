// Streaming analytics example — the workload class the paper's
// introduction motivates ("an infinite sequence of elementary data items
// received from several sources with a potentially variable input rate...
// extract actionable intelligence").
//
// A synthetic sensor fleet emits readings; a TBB-style token pipeline
// parses and validates them in parallel, a windowed aggregation filter
// (serial, in order) computes per-sensor sliding statistics, and an
// alerting sink flags anomalies. Demonstrates the taskx runtime on a
// realistic analytics topology.
//
//   ./sensor_analytics [--events=N] [--sensors=N] [--window=N]
//                      [--tokens=N] [--threads=N]
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "taskx/pipeline.hpp"
#include "taskx/pool.hpp"

namespace {

struct Reading {
  int sensor = 0;
  std::uint64_t seq = 0;
  double value = 0;
  bool valid = true;
};

struct Aggregated {
  Reading reading;
  double window_mean = 0;
  double window_stddev = 0;
  bool anomaly = false;
};

}  // namespace

int main(int argc, const char** argv) {
  auto args_or = hs::CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    return 1;
  }
  const hs::CliArgs& args = args_or.value();
  const int events = static_cast<int>(args.get_int("events", 50000));
  const int sensors = static_cast<int>(args.get_int("sensors", 16));
  const std::size_t window =
      static_cast<std::size_t>(args.get_int("window", 64));
  const std::size_t tokens =
      static_cast<std::size_t>(args.get_int("tokens", 32));
  const unsigned threads =
      static_cast<unsigned>(args.get_int("threads", 4));

  hs::taskx::ThreadPool pool(threads);

  // Source: the sensor fleet. Each sensor follows a drifting baseline;
  // occasional spikes are the anomalies the pipeline must flag; some
  // readings arrive garbled (NaN-like sentinels) and must be dropped.
  hs::Xoshiro256 rng(2026);
  std::vector<double> baseline(static_cast<std::size_t>(sensors));
  for (auto& b : baseline) b = 20.0 + rng.uniform() * 10.0;
  int injected_anomalies = 0;

  hs::taskx::Pipeline pipe([&, n = 0]() mutable
                               -> std::optional<hs::taskx::Item> {
    if (n >= events) return std::nullopt;
    Reading r;
    r.seq = static_cast<std::uint64_t>(n++);
    r.sensor = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(sensors)));
    auto& base = baseline[static_cast<std::size_t>(r.sensor)];
    base += (rng.uniform() - 0.5) * 0.05;  // slow drift
    r.value = base + (rng.uniform() - 0.5) * 0.8;
    if (rng.chance(0.002)) {  // spike
      r.value += 25.0 + rng.uniform() * 10.0;
      ++injected_anomalies;
    }
    if (rng.chance(0.01)) r.valid = false;  // transmission garbage
    return hs::taskx::Item::of<Reading>(r);
  });

  // Parallel parse/validate filter: drops invalid readings.
  pipe.add_filter(hs::taskx::FilterMode::kParallel,
                  [](hs::taskx::Item in) -> hs::taskx::Item {
                    Reading r = in.take<Reading>();
                    if (!r.valid) return {};  // drop
                    // (a real deployment parses wire format here)
                    return hs::taskx::Item::of<Reading>(r);
                  });

  // Serial in-order windowed aggregation per sensor.
  std::map<int, std::deque<double>> windows;
  pipe.add_filter(
      hs::taskx::FilterMode::kSerialInOrder, [&](hs::taskx::Item in) {
        Reading r = in.take<Reading>();
        auto& w = windows[r.sensor];
        hs::RunningStats stats;
        for (double v : w) stats.add(v);
        Aggregated agg;
        agg.reading = r;
        if (stats.count() >= window / 2) {
          agg.window_mean = stats.mean();
          agg.window_stddev = stats.stddev();
          agg.anomaly =
              std::abs(r.value - stats.mean()) > 6.0 * stats.stddev() + 3.0;
        }
        // Anomalies are excluded from the window so one spike does not
        // mask the next.
        if (!agg.anomaly) {
          w.push_back(r.value);
          if (w.size() > window) w.pop_front();
        }
        return hs::taskx::Item::of<Aggregated>(agg);
      });

  // Alerting sink.
  std::uint64_t processed = 0, alerts = 0;
  pipe.add_filter(hs::taskx::FilterMode::kSerialInOrder,
                  [&](hs::taskx::Item in) {
                    const auto& agg = in.as<Aggregated>();
                    ++processed;
                    if (agg.anomaly) ++alerts;
                    return in;
                  });

  hs::Status s = pipe.run(pool, tokens);
  if (!s.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("events=%d processed=%llu (invalid dropped), alerts=%llu, "
              "injected spikes=%d\n",
              events, static_cast<unsigned long long>(processed),
              static_cast<unsigned long long>(alerts), injected_anomalies);
  // The detector must catch most injected spikes without drowning in
  // false positives.
  bool ok = alerts >= static_cast<std::uint64_t>(injected_anomalies) * 6 / 10 &&
            alerts <= static_cast<std::uint64_t>(injected_anomalies) * 3 + 20;
  std::printf("detection sanity: %s\n", ok ? "OK" : "SUSPECT");
  return ok ? 0 : 1;
}
