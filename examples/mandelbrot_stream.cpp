// Mandelbrot Streaming (the paper's first use case) end-to-end: renders the
// fractal with a chosen runtime and writes a PGM image. All runtimes
// produce bit-identical pixels.
//
//   ./mandelbrot_stream [--runtime=seq|flow|tbb|spar|spar-cuda|opencl]
//                       [--dim=N] [--niter=N] [--workers=N] [--gpus=N]
//                       [--out=mandelbrot.pgm]
#include <chrono>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "cudax/cudax.hpp"
#include "mandel/iteration_map.hpp"
#include "mandel/pipelines.hpp"

int main(int argc, const char** argv) {
  auto args_or = hs::CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    return 1;
  }
  const hs::CliArgs& args = args_or.value();

  hs::kernels::MandelParams params;
  params.dim = static_cast<int>(args.get_int("dim", 512));
  params.niter = static_cast<int>(args.get_int("niter", 2000));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const int gpus = static_cast<int>(args.get_int("gpus", 2));
  const std::string runtime = args.get_string("runtime", "spar");
  const std::string out_path = args.get_string("out", "mandelbrot.pgm");

  std::printf("rendering %dx%d fractal (niter=%d) with runtime '%s'...\n",
              params.dim, params.dim, params.niter, runtime.c_str());

  auto machine =
      hs::gpusim::Machine::Create(gpus, hs::gpusim::DeviceSpec::TitanXP());

  auto t0 = std::chrono::steady_clock::now();
  hs::Result<std::vector<std::uint8_t>> image =
      hs::InvalidArgument("unknown runtime '" + runtime +
                          "' (use seq|flow|tbb|spar|spar-cuda|opencl)");
  if (runtime == "seq") {
    image = hs::mandel::render_sequential(params);
  } else if (runtime == "flow") {
    image = hs::mandel::render_flow(params, workers);
  } else if (runtime == "tbb") {
    image = hs::mandel::render_taskx(params, workers,
                                     static_cast<std::size_t>(2 * workers));
  } else if (runtime == "spar") {
    image = hs::mandel::render_spar(params, workers);
  } else if (runtime == "spar-cuda") {
    hs::cudax::bind_machine(machine.get());
    image = hs::mandel::render_spar_cuda(params, workers, *machine);
    hs::cudax::unbind_machine();
  } else if (runtime == "opencl") {
    image = hs::mandel::render_opencl_batched(params, *machine, 32);
  }
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  if (!image.ok()) {
    std::fprintf(stderr, "render failed: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  std::printf("rendered in %.2fs (wall), checksum %016llx\n", wall,
              static_cast<unsigned long long>(
                  hs::mandel::image_checksum(image.value())));
  if (runtime == "spar-cuda" || runtime == "opencl") {
    for (int d = 0; d < machine->device_count(); ++d) {
      auto c = machine->device(d).counters();
      if (c.kernels_launched == 0) continue;
      std::printf("  sim gpu%d: %llu kernels, %llu warps, virtual t=%.4fs\n",
                  d, static_cast<unsigned long long>(c.kernels_launched),
                  static_cast<unsigned long long>(c.warps_executed),
                  machine->device(d).sync_all());
    }
  }
  hs::Status s = hs::mandel::write_pgm(out_path, image.value(), params.dim,
                                       params.dim);
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
