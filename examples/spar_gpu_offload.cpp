// SPar GPU auto-offload demo — the paper's future work (§VI) in action:
// the programmer writes only a per-element function; the lowering
// generates the entire GPU offload path (device selection, streams,
// buffers, transfers, kernel launch) for either backend.
//
//   ./spar_gpu_offload [--backend=cuda|opencl] [--batches=N]
//                      [--batch-size=N] [--workers=N] [--gpus=N]
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "cudax/cudax.hpp"
#include "spar/gpu_stage.hpp"

int main(int argc, const char** argv) {
  auto args_or = hs::CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    return 1;
  }
  const hs::CliArgs& args = args_or.value();
  const int nbatches = static_cast<int>(args.get_int("batches", 32));
  const int batch = static_cast<int>(args.get_int("batch-size", 4096));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const int gpus = static_cast<int>(args.get_int("gpus", 2));
  const std::string backend_name = args.get_string("backend", "cuda");

  auto machine =
      hs::gpusim::Machine::Create(gpus, hs::gpusim::DeviceSpec::TitanXP());
  hs::cudax::bind_machine(machine.get());

  hs::spar::ToStream region("offload-demo");
  region.source<std::vector<float>>(
      [b = 0, nbatches, batch]() mutable -> std::optional<std::vector<float>> {
        if (b >= nbatches) return std::nullopt;
        std::vector<float> v(static_cast<std::size_t>(batch));
        for (int i = 0; i < batch; ++i) {
          v[static_cast<std::size_t>(i)] = static_cast<float>(b * batch + i);
        }
        ++b;
        return v;
      });

  hs::spar::GpuOffload offload;
  offload.machine = machine.get();
  offload.backend = backend_name == "opencl" ? hs::spar::GpuBackend::kOpenCl
                                             : hs::spar::GpuBackend::kCuda;
  offload.replicas = workers;
  // The per-element "kernel": this single lambda is all the GPU code the
  // programmer writes.
  hs::spar::gpu_map_stage<float>(region, offload, [](float x) {
    float y = x * 0.001f;
    return y * y + 2.0f * y + 1.0f;  // (y + 1)^2
  });

  double checksum = 0;
  long long items = 0;
  region.last_stage<std::vector<float>>([&](std::vector<float> v) {
    for (float x : v) checksum += x;
    items += static_cast<long long>(v.size());
  });

  std::printf("lowered graph: %s (%d threads), backend=%s, %d sim GPU(s)\n",
              region.graph_description().c_str(), region.thread_count(),
              backend_name.c_str(), gpus);
  hs::Status s = region.run();
  hs::cudax::unbind_machine();
  if (!s.ok()) {
    std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Verify against the closed form.
  double expect = 0;
  for (long long i = 0; i < items; ++i) {
    double y = static_cast<double>(i) * 0.001;
    expect += static_cast<float>(y * y + 2.0 * y + 1.0);
  }
  std::printf("processed %lld elements, checksum %.1f (expected %.1f)\n",
              items, checksum, expect);
  for (int d = 0; d < machine->device_count(); ++d) {
    auto c = machine->device(d).counters();
    std::printf("  sim gpu%d: %llu kernels, %s h2d, %s d2h\n", d,
                static_cast<unsigned long long>(c.kernels_launched),
                hs::format_bytes(c.h2d_bytes).c_str(),
                hs::format_bytes(c.d2h_bytes).c_str());
  }
  return std::fabs(checksum - expect) < 1e-3 * expect ? 0 : 1;
}
