// Quickstart: a minimal stream-processing pipeline with the SPar-style API.
//
// Mirrors the paper's Listing 1 structure on a toy workload: a source
// produces sentences, a replicated stage computes an expensive digest per
// sentence, and the collecting stage aggregates — with stream order
// preserved, exactly like [[spar::ToStream]] / [[spar::Stage]] /
// [[spar::Replicate]].
//
//   ./quickstart [--items=N] [--workers=N]
#include <cstdio>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "kernels/sha256.hpp"
#include "spar/spar.hpp"

namespace {

struct Sentence {
  int id = 0;
  std::string text;
};

struct Digested {
  int id = 0;
  std::string hex;
};

}  // namespace

int main(int argc, const char** argv) {
  auto args = hs::CliArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const int items = static_cast<int>(args.value().get_int("items", 1000));
  const int workers = static_cast<int>(args.value().get_int("workers", 4));

  hs::spar::ToStream region("quickstart");

  // [[spar::ToStream]]: the stream-management loop.
  region.source<Sentence>([i = 0, items]() mutable -> std::optional<Sentence> {
    if (i >= items) return std::nullopt;
    Sentence s;
    s.id = i++;
    s.text = "stream item number " + std::to_string(s.id) +
             " flowing through the pipeline";
    return s;
  });

  // [[spar::Stage, spar::Replicate(workers)]]: stateless, replicated.
  region.stage<Sentence, Digested>(
      hs::spar::Replicate(workers), [](Sentence s) {
        auto digest = hs::kernels::Sha256::hash(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(s.text.data()),
            s.text.size()));
        return Digested{s.id, hs::kernels::digest_hex(digest)};
      });

  // Final [[spar::Stage]]: collect in order.
  int received = 0;
  bool in_order = true;
  std::string last_hex;
  region.last_stage<Digested>([&](Digested d) {
    in_order = in_order && d.id == received;
    ++received;
    last_hex = d.hex;
  });

  std::printf("pipeline: %s (%d threads)\n",
              region.graph_description().c_str(), region.thread_count());
  hs::Status status = region.run();
  if (!status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("processed %d/%d items, order preserved: %s\n", received,
              items, in_order ? "yes" : "NO");
  std::printf("last digest: %s\n", last_hex.c_str());
  return received == items && in_order ? 0 : 1;
}
