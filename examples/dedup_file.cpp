// Dedup as a usable tool (the paper's second use case): content-defined
// dedup + LZSS compression of real files, with every pipeline backend.
//
//   ./dedup_file compress <input> <output> [--backend=seq|spar|spar-cuda|opencl]
//                [--replicas=N] [--batch-size=BYTES] [--gpus=N]
//   ./dedup_file extract  <archive> <output>
//   ./dedup_file info     <archive>
//   ./dedup_file demo     — generates a corpus, compresses, verifies
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/pipelines.hpp"

namespace {

hs::Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return hs::NotFound("cannot open " + path);
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return data;
}

hs::Status write_file(const std::string& path,
                      const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return hs::Internal("cannot open " + path + " for write");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? hs::OkStatus() : hs::Internal("short write to " + path);
}

hs::Result<std::vector<std::uint8_t>> compress(
    const std::vector<std::uint8_t>& input, const hs::CliArgs& args) {
  hs::dedup::DedupConfig cfg;
  cfg.batch_size = static_cast<std::uint32_t>(
      args.get_bytes("batch-size", 1 << 20));
  if (args.get_string("codec", "lzss") == "lzss-huffman") {
    cfg.codec = hs::dedup::DedupCodec::kLzssHuffman;
  }
  const std::string backend = args.get_string("backend", "spar");
  const int replicas = static_cast<int>(args.get_int("replicas", 4));
  const int gpus = static_cast<int>(args.get_int("gpus", 1));

  if (backend == "seq") {
    return hs::dedup::archive_sequential(input, cfg);
  }
  if (backend == "spar") {
    return hs::dedup::archive_spar_cpu(input, cfg, replicas);
  }
  if (backend == "spar-cuda") {
    auto machine =
        hs::gpusim::Machine::Create(gpus, hs::gpusim::DeviceSpec::TitanXP());
    hs::cudax::bind_machine(machine.get());
    auto r = hs::dedup::archive_spar_cuda(input, cfg, replicas, *machine);
    hs::cudax::unbind_machine();
    return r;
  }
  if (backend == "opencl") {
    auto machine =
        hs::gpusim::Machine::Create(gpus, hs::gpusim::DeviceSpec::TitanXP());
    return hs::dedup::archive_opencl_single_thread(input, cfg, *machine,
                                                   /*batched_kernel=*/true);
  }
  return hs::InvalidArgument("unknown backend '" + backend +
                             "' (use seq|spar|spar-cuda|opencl)");
}

int do_info(const std::vector<std::uint8_t>& archive) {
  auto info = hs::dedup::inspect(archive);
  if (!info.ok()) {
    std::fprintf(stderr, "inspect failed: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  const auto& v = info.value();
  std::printf("original size       : %s\n",
              hs::format_bytes(v.original_size).c_str());
  std::printf("archive batches     : %llu\n",
              static_cast<unsigned long long>(v.batch_count));
  std::printf("unique blocks       : %llu\n",
              static_cast<unsigned long long>(v.unique_blocks));
  std::printf("duplicate blocks    : %llu\n",
              static_cast<unsigned long long>(v.duplicate_blocks));
  std::printf("compressed payload  : %s\n",
              hs::format_bytes(v.compressed_payload_bytes).c_str());
  if (v.original_size > 0) {
    std::printf("dedup+compress ratio: %.1f%%\n",
                100.0 * static_cast<double>(v.compressed_payload_bytes) /
                    static_cast<double>(v.original_size));
  }
  return 0;
}

int do_demo(const hs::CliArgs& args) {
  hs::datagen::CorpusSpec spec;
  spec.kind = hs::datagen::CorpusKind::kParsecLike;
  spec.bytes = args.get_bytes("input-size", 2 * 1000 * 1000);
  std::printf("generating %s parsec-like corpus...\n",
              hs::format_bytes(spec.bytes).c_str());
  auto input = hs::datagen::generate(spec);

  for (const char* backend : {"seq", "spar", "spar-cuda", "opencl"}) {
    auto v = hs::CliArgs::Parse(0, nullptr);
    auto archive = [&] {
      hs::dedup::DedupConfig cfg;
      cfg.batch_size = 256 * 1024;
      if (std::string(backend) == "seq") {
        return hs::dedup::archive_sequential(input, cfg);
      }
      if (std::string(backend) == "spar") {
        return hs::dedup::archive_spar_cpu(input, cfg, 4);
      }
      auto machine = hs::gpusim::Machine::Create(
          2, hs::gpusim::DeviceSpec::TitanXP());
      if (std::string(backend) == "spar-cuda") {
        hs::cudax::bind_machine(machine.get());
        auto r = hs::dedup::archive_spar_cuda(input, cfg, 4, *machine);
        hs::cudax::unbind_machine();
        return r;
      }
      return hs::dedup::archive_opencl_single_thread(input, cfg, *machine,
                                                     true);
    }();
    if (!archive.ok()) {
      std::fprintf(stderr, "[%s] failed: %s\n", backend,
                   archive.status().ToString().c_str());
      return 1;
    }
    auto back = hs::dedup::extract(archive.value());
    bool ok = back.ok() && back.value() == input;
    std::printf("[%-9s] archive %s (%.1f%% of input), roundtrip %s\n",
                backend, hs::format_bytes(archive.value().size()).c_str(),
                100.0 * static_cast<double>(archive.value().size()) /
                    static_cast<double>(input.size()),
                ok ? "OK" : "FAILED");
    if (!ok) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, const char** argv) {
  auto args_or = hs::CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    return 1;
  }
  const hs::CliArgs& args = args_or.value();
  const auto& pos = args.positional();
  const std::string mode = pos.empty() ? "demo" : pos[0];

  if (mode == "demo") return do_demo(args);

  if (mode == "info" && pos.size() == 2) {
    auto archive = read_file(pos[1]);
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    return do_info(archive.value());
  }

  if (mode == "compress" && pos.size() == 3) {
    auto input = read_file(pos[1]);
    if (!input.ok()) {
      std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
      return 1;
    }
    auto archive = compress(input.value(), args);
    if (!archive.ok()) {
      std::fprintf(stderr, "compress failed: %s\n",
                   archive.status().ToString().c_str());
      return 1;
    }
    if (hs::Status s = write_file(pos[2], archive.value()); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("%s -> %s (%s -> %s)\n", pos[1].c_str(), pos[2].c_str(),
                hs::format_bytes(input.value().size()).c_str(),
                hs::format_bytes(archive.value().size()).c_str());
    return 0;
  }

  if (mode == "extract" && pos.size() == 3) {
    auto archive = read_file(pos[1]);
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    auto data = args.get_bool("parallel", false)
                    ? hs::dedup::extract_parallel(
                          archive.value(),
                          static_cast<int>(args.get_int("replicas", 4)))
                    : hs::dedup::extract(archive.value());
    if (!data.ok()) {
      std::fprintf(stderr, "extract failed: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    if (hs::Status s = write_file(pos[2], data.value()); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("extracted %s (integrity verified)\n",
                hs::format_bytes(data.value().size()).c_str());
    return 0;
  }

  std::fprintf(stderr,
               "usage: dedup_file compress <in> <out> [--backend=...]\n"
               "       dedup_file extract <archive> <out>\n"
               "       dedup_file info <archive>\n"
               "       dedup_file demo [--input-size=BYTES]\n");
  return 2;
}
