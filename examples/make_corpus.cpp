// Generates the synthetic corpora (the stand-ins for the paper's three
// Dedup datasets) to a file, for use with dedup_file / lzss_stream or
// external tools.
//
//   ./make_corpus <parsec|source|silesia> <output> [--size=BYTES] [--seed=N]
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "datagen/corpus.hpp"

int main(int argc, const char** argv) {
  auto args_or = hs::CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    return 1;
  }
  const hs::CliArgs& args = args_or.value();
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: make_corpus <parsec|source|silesia> <output> "
                 "[--size=BYTES] [--seed=N]\n");
    return 2;
  }
  auto kind = hs::datagen::parse_corpus_kind(args.positional()[0]);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  hs::datagen::CorpusSpec spec;
  spec.kind = kind.value();
  spec.bytes = args.get_bytes("size", 16 * 1000 * 1000);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  auto data = hs::datagen::generate(spec);
  auto profile = hs::datagen::profile(data);

  std::ofstream out(args.positional()[1], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", args.positional()[1].c_str());
    return 1;
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    std::fprintf(stderr, "short write\n");
    return 1;
  }
  std::printf("%s: %s of %s (duplicate blocks %.0f%%, lzss ratio %.2f)\n",
              args.positional()[1].c_str(),
              hs::format_bytes(spec.bytes).c_str(),
              std::string(hs::datagen::corpus_name(spec.kind)).c_str(),
              profile.duplicate_block_fraction * 100, profile.lzss_ratio);
  return 0;
}
