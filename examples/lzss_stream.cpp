// Streaming LZSS compressor CLI (the application of the paper's reference
// [24], which §IV-B builds Dedup's GPU compression on).
//
//   ./lzss_stream compress <in> <out> [--backend=seq|spar|spar-cuda]
//                 [--replicas=N] [--block-size=BYTES] [--gpus=N]
//   ./lzss_stream extract <archive> <out>
//   ./lzss_stream demo    — generates a corpus, runs all backends, verifies
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "lzssapp/lzss_stream.hpp"

namespace {

hs::Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return hs::NotFound("cannot open " + path);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

hs::Status write_file(const std::string& path,
                      const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return hs::Internal("cannot open " + path + " for write");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? hs::OkStatus() : hs::Internal("short write");
}

int do_demo(const hs::CliArgs& args) {
  hs::datagen::CorpusSpec spec;
  spec.kind = hs::datagen::CorpusKind::kSourceLike;
  spec.bytes = args.get_bytes("input-size", 1 * 1000 * 1000);
  auto input = hs::datagen::generate(spec);
  hs::lzssapp::LzssStreamConfig cfg;

  auto machine =
      hs::gpusim::Machine::Create(2, hs::gpusim::DeviceSpec::TitanXP());
  hs::cudax::bind_machine(machine.get());
  struct Run {
    const char* name;
    hs::Result<std::vector<std::uint8_t>> archive;
  };
  std::vector<Run> runs;
  runs.push_back({"seq", hs::lzssapp::compress_sequential(input, cfg)});
  runs.push_back({"spar", hs::lzssapp::compress_spar(input, cfg, 4)});
  runs.push_back(
      {"spar-cuda",
       hs::lzssapp::compress_spar_cuda(input, cfg, 4, *machine)});
  hs::cudax::unbind_machine();

  for (auto& run : runs) {
    if (!run.archive.ok()) {
      std::fprintf(stderr, "[%s] failed: %s\n", run.name,
                   run.archive.status().ToString().c_str());
      return 1;
    }
    auto back = hs::lzssapp::decompress(run.archive.value());
    bool ok = back.ok() && back.value() == input;
    std::printf("[%-9s] %s -> %s (%.1f%%), roundtrip %s\n", run.name,
                hs::format_bytes(input.size()).c_str(),
                hs::format_bytes(run.archive.value().size()).c_str(),
                100.0 * static_cast<double>(run.archive.value().size()) /
                    static_cast<double>(input.size()),
                ok ? "OK" : "FAILED");
    if (!ok) return 1;
  }
  // All backends must agree byte-for-byte.
  if (runs[0].archive.value() != runs[1].archive.value() ||
      runs[0].archive.value() != runs[2].archive.value()) {
    std::fprintf(stderr, "backends disagree!\n");
    return 1;
  }
  std::printf("all backends produced identical containers\n");
  return 0;
}

}  // namespace

int main(int argc, const char** argv) {
  auto args_or = hs::CliArgs::Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    return 1;
  }
  const hs::CliArgs& args = args_or.value();
  const auto& pos = args.positional();
  const std::string mode = pos.empty() ? "demo" : pos[0];

  if (mode == "demo") return do_demo(args);

  hs::lzssapp::LzssStreamConfig cfg;
  cfg.block_size =
      static_cast<std::uint32_t>(args.get_bytes("block-size", 64 * 1024));

  if (mode == "compress" && pos.size() == 3) {
    auto input = read_file(pos[1]);
    if (!input.ok()) {
      std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
      return 1;
    }
    const std::string backend = args.get_string("backend", "spar");
    const int replicas = static_cast<int>(args.get_int("replicas", 4));
    hs::Result<std::vector<std::uint8_t>> archive =
        hs::InvalidArgument("unknown backend: " + backend);
    if (backend == "seq") {
      archive = hs::lzssapp::compress_sequential(input.value(), cfg);
    } else if (backend == "spar") {
      archive = hs::lzssapp::compress_spar(input.value(), cfg, replicas);
    } else if (backend == "spar-cuda") {
      auto machine = hs::gpusim::Machine::Create(
          static_cast<int>(args.get_int("gpus", 1)),
          hs::gpusim::DeviceSpec::TitanXP());
      hs::cudax::bind_machine(machine.get());
      archive = hs::lzssapp::compress_spar_cuda(input.value(), cfg, replicas,
                                                *machine);
      hs::cudax::unbind_machine();
    }
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    if (auto s = write_file(pos[2], archive.value()); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("%s -> %s\n", hs::format_bytes(input.value().size()).c_str(),
                hs::format_bytes(archive.value().size()).c_str());
    return 0;
  }

  if (mode == "extract" && pos.size() == 3) {
    auto archive = read_file(pos[1]);
    if (!archive.ok()) {
      std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
      return 1;
    }
    auto data = hs::lzssapp::decompress(archive.value());
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    if (auto s = write_file(pos[2], data.value()); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("extracted %s (integrity verified)\n",
                hs::format_bytes(data.value().size()).c_str());
    return 0;
  }

  std::fprintf(stderr,
               "usage: lzss_stream compress <in> <out> [--backend=...]\n"
               "       lzss_stream extract <archive> <out>\n"
               "       lzss_stream demo\n");
  return 2;
}
