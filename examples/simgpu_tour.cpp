// Tour of the simulated-GPU APIs: the CUDA-style shim (streams, events,
// pinned memory, copy/compute overlap) and the OpenCL-style shim
// (discovery workflow, command queues, the non-thread-safe cl_kernel).
// Demonstrates the exact mechanisms the paper wrestles with in §IV-A.
#include <cstdio>
#include <thread>
#include <vector>

#include "cudax/cudax.hpp"
#include "oclx/cl_api.hpp"
#include "oclx/oclx.hpp"

namespace {

int cuda_tour(hs::gpusim::Machine& machine) {
  using namespace hs::cudax;
  std::printf("== CUDA-style shim ==\n");
  bind_machine(&machine);

  int count = 0;
  cudaGetDeviceCount(&count);
  std::printf("devices: %d\n", count);

  // Pinned host memory enables real async copies (the paper's Dedup could
  // not use it because of realloc, defeating its 2x-memory optimization).
  const std::size_t n = 1 << 20;
  void* pinned = nullptr;
  if (cudaMallocHost(&pinned, n * sizeof(float)) != cudaError::cudaSuccess) {
    return 1;
  }
  auto* host_data = static_cast<float*>(pinned);
  for (std::size_t i = 0; i < n; ++i) host_data[i] = static_cast<float>(i);

  void* dev = nullptr;
  if (cudaMalloc(&dev, n * sizeof(float)) != cudaError::cudaSuccess) {
    std::fprintf(stderr, "cudaMalloc: %s\n", last_error_message().c_str());
    return 1;
  }
  auto* dev_data = static_cast<float*>(dev);

  cudaStream_t stream;
  cudaStreamCreate(&stream);
  cudaEvent_t start, stop;
  cudaEventCreate(&start);
  cudaEventCreate(&stop);

  cudaEventRecord(&start, stream);
  bool fell_back = false;
  cudaMemcpyAsync(dev, pinned, n * sizeof(float),
                  cudaMemcpyKind::cudaMemcpyHostToDevice, stream, &fell_back);
  launch_kernel(Dim3{static_cast<std::uint32_t>((n + 255) / 256), 1, 1},
                Dim3{256, 1, 1}, stream,
                [dev_data, n](const ThreadCtx& ctx) -> std::uint64_t {
                  std::uint64_t i = ctx.global_x();
                  if (i >= n) return 1;
                  float x = dev_data[i];
                  // saxpy-ish busy loop: cost 64 units
                  for (int k = 0; k < 63; ++k) x = x * 1.0000001f + 0.5f;
                  dev_data[i] = x;
                  return 64;
                });
  cudaMemcpyAsync(pinned, dev, n * sizeof(float),
                  cudaMemcpyKind::cudaMemcpyDeviceToHost, stream);
  cudaEventRecord(&stop, stream);
  float ms = 0;
  cudaEventElapsedTime(&ms, start, stop);
  std::printf("copy->kernel->copy on one stream: %.3f virtual ms "
              "(async copies%s)\n",
              ms, fell_back ? " FELL BACK to sync" : "");
  std::printf("result sample: %.2f (was 1000)\n",
              static_cast<double>(host_data[1000]));

  cudaFree(dev);
  cudaFreeHost(pinned);
  unbind_machine();
  return 0;
}

int opencl_tour(hs::gpusim::Machine& machine) {
  using namespace hs::oclx;
  std::printf("\n== OpenCL-style shim ==\n");
  // Step 1 of the paper's OpenCL workflow: discovery.
  auto platforms = Platform::get(&machine);
  if (platforms.empty()) return 1;
  auto devices = platforms[0].devices();
  std::printf("platform '%s', %zu device(s), %u CUs each\n",
              platforms[0].name().c_str(), devices.size(),
              devices[0].max_compute_units());

  auto ctx = Context::create(devices);
  auto queue = CommandQueue::create(ctx.value(), devices[0]);
  auto buf = Buffer::create(ctx.value(), devices[0], 256);
  if (!queue.ok() || !buf.ok()) return 1;

  // cl_kernel objects are NOT thread-safe: the second thread must either
  // create its own kernel (the paper's per-stream-item fix) or acquire().
  Kernel kernel = Kernel::create("touch", [](const ThreadCtx&) {});
  queue.value().enqueue_ndrange(kernel, Dim3{64, 1, 1}, Dim3{64, 1, 1},
                                nullptr);
  ClStatus foreign = ClStatus::kSuccess;
  std::thread t([&] {
    auto q2 = CommandQueue::create(ctx.value(), devices[0]);
    foreign = q2.value().enqueue_ndrange(kernel, Dim3{64, 1, 1},
                                         Dim3{64, 1, 1}, nullptr);
  });
  t.join();
  std::printf("enqueue from foreign thread: %s (expected "
              "CL_INVALID_OPERATION — allocate one kernel per thread)\n",
              std::string(status_name(foreign)).c_str());

  // Events: the mechanism the paper's last pipeline stage uses.
  Kernel work = Kernel::create("work", [](const ThreadCtx&) -> std::uint64_t {
    return 5000;
  });
  Event done;
  queue.value().enqueue_ndrange(work, Dim3{30 * 2048, 1, 1}, Dim3{256, 1, 1},
                                &done);
  auto finished = Event::wait_for_events({done});
  std::printf("clWaitForEvents: kernel finished at virtual t=%.4fs\n",
              finished.value_or(-1));
  return 0;
}

}  // namespace

int raw_cl_tour(hs::gpusim::Machine& machine) {
  using namespace hs::oclx::capi;
  std::printf("\n== raw OpenCL C API ==\n");
  clSimBindMachine(&machine);
  cl_platform_id platform = nullptr;
  cl_uint n = 0;
  if (clGetPlatformIDs(1, &platform, &n) != CL_SUCCESS) return 1;
  cl_device_id device = nullptr;
  if (clGetDeviceIDs(platform, 1, &device, &n) != CL_SUCCESS) return 1;
  cl_ulong mem = 0;
  clGetDeviceInfo(device, CL_DEVICE_GLOBAL_MEM_SIZE, sizeof(mem), &mem,
                  nullptr);
  std::printf("device 0 global memory: %llu MiB\n",
              static_cast<unsigned long long>(mem >> 20));
  cl_int err = CL_SUCCESS;
  cl_context ctx = clCreateContext(&device, 1, &err);
  cl_command_queue queue = clCreateCommandQueue(ctx, device, &err);
  cl_mem buf = clCreateBuffer(ctx, 1024, &err);
  cl_kernel kernel = clCreateKernelFromCallback(
      ctx, "noop", [](const hs::gpusim::ThreadCtx&) -> std::uint64_t {
        return 1;
      },
      &err);
  cl_event done = nullptr;
  clEnqueueNDRangeKernel(queue, kernel, 1024, 256, &done);
  cl_int waited = clWaitForEvents(1, &done);
  std::printf("clEnqueueNDRangeKernel + clWaitForEvents: %s\n",
              waited == CL_SUCCESS ? "CL_SUCCESS" : "error");
  clReleaseEvent(done);
  clReleaseKernel(kernel);
  clReleaseMemObject(buf);
  clReleaseCommandQueue(queue);
  clReleaseContext(ctx);
  clSimBindMachine(nullptr);
  return waited == CL_SUCCESS ? 0 : 1;
}

int main() {
  auto machine =
      hs::gpusim::Machine::Create(2, hs::gpusim::DeviceSpec::TitanXP());
  int rc = cuda_tour(*machine);
  if (rc != 0) return rc;
  rc = opencl_tour(*machine);
  if (rc != 0) return rc;
  return raw_cl_tour(*machine);
}
